// Exact-schedule tests for the flit-level wormhole engine: hand-computed
// pipelines, contention, FIFO fairness, release semantics, conservation and
// determinism.
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "sim/wormhole_engine.h"

namespace coc {
namespace {

using Delivery = WormholeEngine::Delivery;

std::vector<Delivery> RunAll(WormholeEngine& e) {
  std::vector<Delivery> out;
  e.Run([&out](const Delivery& d) { out.push_back(d); });
  return out;
}

TEST(WormholeEngine, SingleChannelMessageTakesMFlitTimes) {
  WormholeEngine e({2.0});
  e.AddMessage(0.0, {0}, {1}, /*flits=*/5, 0);
  const auto d = RunAll(e);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0].deliver_time, 5 * 2.0);
}

TEST(WormholeEngine, HomogeneousPipelineClassicFormula) {
  // L channels of per-flit time t: latency = (L + M - 1) t.
  for (int links = 1; links <= 5; ++links) {
    std::vector<double> times(static_cast<std::size_t>(links), 1.5);
    WormholeEngine e(times);
    std::vector<std::int32_t> path, depth;
    for (int i = 0; i < links; ++i) {
      path.push_back(i);
      depth.push_back(1);
    }
    e.AddMessage(0.0, path, depth, /*flits=*/8, 0);
    const auto d = RunAll(e);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_DOUBLE_EQ(d[0].deliver_time, (links + 8 - 1) * 1.5) << links;
  }
}

TEST(WormholeEngine, BottleneckDominatesDrainRate) {
  // Channels 1.0 then 2.0: hand recurrence gives delivery 2M + 1.
  WormholeEngine e({1.0, 2.0});
  e.AddMessage(0.0, {0, 1}, {1, 1}, /*flits=*/4, 0);
  const auto d = RunAll(e);
  EXPECT_DOUBLE_EQ(d[0].deliver_time, 2 * 4 + 1.0);
}

TEST(WormholeEngine, FastThenSlowEqualsSlowThenFastForSingleMessage) {
  WormholeEngine a({1.0, 3.0});
  a.AddMessage(0.0, {0, 1}, {1, 1}, 6, 0);
  const double t1 = RunAll(a)[0].deliver_time;
  WormholeEngine b({3.0, 1.0});
  b.AddMessage(0.0, {0, 1}, {1, 1}, 6, 0);
  const double t2 = RunAll(b)[0].deliver_time;
  // Drain is bottleneck-limited either way; header sees the same sum.
  EXPECT_DOUBLE_EQ(t1, 3 * 6 + 1.0);
  EXPECT_DOUBLE_EQ(t2, t1);
}

TEST(WormholeEngine, FifoContentionOnSharedChannel) {
  // Two 2-flit messages on one unit channel. A: [0,2]. B arrives at 0.5,
  // granted at A's release (2.0), delivered at 4.0.
  WormholeEngine e({1.0});
  e.AddMessage(0.0, {0}, {1}, 2, 0);
  e.AddMessage(0.5, {0}, {1}, 2, 1);
  const auto d = RunAll(e);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0].deliver_time, 2.0);
  EXPECT_DOUBLE_EQ(d[1].deliver_time, 4.0);
  EXPECT_EQ(d[1].user_tag, 1u);
}

TEST(WormholeEngine, GrantOrderIsFifoNotShortestJob) {
  // Three messages request the same channel while busy; they are served in
  // request order regardless of length.
  WormholeEngine e({1.0});
  e.AddMessage(0.0, {0}, {1}, 10, 0);  // holds [0, 10)
  e.AddMessage(1.0, {0}, {1}, 1, 1);
  e.AddMessage(2.0, {0}, {1}, 5, 2);
  const auto d = RunAll(e);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].user_tag, 0u);
  EXPECT_EQ(d[1].user_tag, 1u);
  EXPECT_DOUBLE_EQ(d[1].deliver_time, 11.0);
  EXPECT_EQ(d[2].user_tag, 2u);
  EXPECT_DOUBLE_EQ(d[2].deliver_time, 16.0);
}

TEST(WormholeEngine, UpstreamChannelHeldUntilTailHandsOff) {
  // Msg A takes channels {0, 1}; msg B needs channel 0 only. With unit
  // buffers channel 0 frees when A's tail starts on channel 1.
  // A (M=3, t=1 both): tail starts on ch1 at t=3 => B granted at 3,
  // delivered 3 + 3 = 6.
  WormholeEngine e({1.0, 1.0});
  e.AddMessage(0.0, {0, 1}, {1, 1}, 3, 0);
  e.AddMessage(0.0, {0}, {1}, 3, 1);
  const auto d = RunAll(e);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0].deliver_time, 4.0);  // (2 + 3 - 1) * 1
  EXPECT_EQ(d[1].user_tag, 1u);
  EXPECT_DOUBLE_EQ(d[1].deliver_time, 6.0);
}

TEST(WormholeEngine, BlockedMessageStallsHoldingChannels) {
  // Msg A occupies channel 2 for a long time. Msg B's path is {0, 1, 2}:
  // its header blocks waiting for 2 while holding 0 and 1, so msg C
  // (path {0}) must wait for B's tail to clear channel 0.
  WormholeEngine e({1.0, 1.0, 1.0});
  e.AddMessage(0.0, {2}, {1}, 20, 0);        // holds ch2 during [0, 20)
  e.AddMessage(1.0, {0, 1, 2}, {1, 1, 1}, 4, 1);
  e.AddMessage(2.0, {0}, {1}, 1, 2);
  const auto d = RunAll(e);
  ASSERT_EQ(d.size(), 3u);
  auto by_tag = [&d](std::uint64_t tag) {
    for (const auto& del : d) {
      if (del.user_tag == tag) return del.deliver_time;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(by_tag(0), 20.0);
  // B: header crosses 0,1 by t=3, waits for ch2 until 20, then the 4-flit
  // pipeline drains: delivery at 24.
  EXPECT_DOUBLE_EQ(by_tag(1), 24.0);
  // C had to wait for B's tail to hand off channel 0, which happens at 22
  // as B's pipeline drains; C then needs one more flit time.
  EXPECT_DOUBLE_EQ(by_tag(2), 23.0);
}

TEST(WormholeEngine, DeepBufferDecouplesUpstream) {
  // Same scenario but channel 1's downstream buffer (before ch2) is
  // unbounded: B's flits accumulate there, channels 0 and 1 release early,
  // and C proceeds without waiting for ch2.
  WormholeEngine e({1.0, 1.0, 1.0});
  e.AddMessage(0.0, {2}, {1}, 20, 0);
  e.AddMessage(1.0, {0, 1, 2}, {1, 0, 1}, 4, 1);
  e.AddMessage(2.0, {0}, {1}, 1, 2);
  const auto d = RunAll(e);
  ASSERT_EQ(d.size(), 3u);
  // C is delivered long before A finishes.
  EXPECT_EQ(d[0].user_tag, 2u);
  EXPECT_LT(d[0].deliver_time, 10.0);
}

TEST(WormholeEngine, SingleMessageLatencyFormulaHeterogeneousPaths) {
  // For a lone message the exact schedule collapses to
  //   delivery = sum_j t_j + (M - 1) * max_j t_j
  // regardless of where the bottleneck sits.
  struct Case {
    std::vector<double> times;
    int flits;
  };
  const Case cases[] = {
      {{1, 3, 1}, 4}, {{3, 1, 1}, 4},       {{1, 1, 3}, 4},
      {{2, 2, 2}, 7}, {{0.5, 4, 2, 1}, 10}, {{5}, 3},
  };
  for (const auto& c : cases) {
    WormholeEngine e(c.times);
    std::vector<std::int32_t> path, depth;
    double sum = 0, mx = 0;
    for (std::size_t i = 0; i < c.times.size(); ++i) {
      path.push_back(static_cast<std::int32_t>(i));
      depth.push_back(1);
      sum += c.times[i];
      mx = std::max(mx, c.times[i]);
    }
    e.AddMessage(0.0, path, depth, c.flits, 0);
    std::vector<Delivery> d;
    e.Run([&d](const Delivery& del) { d.push_back(del); });
    EXPECT_NEAR(d[0].deliver_time, sum + (c.flits - 1) * mx, 1e-9)
        << "times.size=" << c.times.size() << " M=" << c.flits;
  }
}

TEST(WormholeEngine, LongMessageBeyondOldInt16Ceiling) {
  // The seed engine capped messages at 250 flits (int16 counters); the
  // arena engine's counters are 32-bit, bounded only by kMaxFlits.
  WormholeEngine e({1.0, 1.0});
  e.AddMessage(0.0, {0, 1}, {1, 1}, 4096, 0);
  std::vector<Delivery> d;
  e.Run([&d](const Delivery& del) { d.push_back(del); });
  EXPECT_DOUBLE_EQ(d[0].deliver_time, (2 + 4096 - 1) * 1.0);
}

TEST(WormholeEngine, BackToBackMessagesOnPipelineThroughput) {
  // K messages through the same 2-channel pipeline: after the first
  // delivery at (2 + M - 1) t, each further message adds M t (the channel
  // is released when the predecessor's tail starts on channel 1, i.e.
  // every M t).
  WormholeEngine e({1.0, 1.0});
  const int kMessages = 5, kFlits = 4;
  for (int i = 0; i < kMessages; ++i) {
    e.AddMessage(0.0, {0, 1}, {1, 1}, kFlits, static_cast<std::uint64_t>(i));
  }
  std::vector<Delivery> d;
  e.Run([&d](const Delivery& del) { d.push_back(del); });
  ASSERT_EQ(d.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)].deliver_time,
                     (2 + kFlits - 1) + i * kFlits)
        << i;
  }
}

TEST(WormholeEngine, SingleFlitMessage) {
  WormholeEngine e({1.0, 2.0, 1.0});
  e.AddMessage(0.0, {0, 1, 2}, {1, 1, 1}, 1, 0);
  const auto d = RunAll(e);
  EXPECT_DOUBLE_EQ(d[0].deliver_time, 4.0);  // pure store-and-forward of 1 flit
}

TEST(WormholeEngine, BusyTimeAccounting) {
  WormholeEngine e({2.0, 1.0});
  e.AddMessage(0.0, {0, 1}, {1, 1}, 5, 0);
  RunAll(e);
  EXPECT_DOUBLE_EQ(e.ChannelBusyTime(0), 5 * 2.0);
  EXPECT_DOUBLE_EQ(e.ChannelBusyTime(1), 5 * 1.0);
}

TEST(WormholeEngine, ConservationManyRandomMessages) {
  WormholeEngine e(std::vector<double>(16, 1.0));
  std::uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  const int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    // Random strictly-increasing channel sequences: like up*/down* routes,
    // they respect a global resource order, so the workload is
    // deadlock-free by construction (arbitrary random paths are not).
    std::vector<std::int32_t> path;
    std::int32_t c = static_cast<std::int32_t>(next() % 8);
    for (int j = 0; j < 3; ++j) {
      path.push_back(c);
      c += 1 + static_cast<std::int32_t>(next() % 3);
    }
    e.AddMessage(static_cast<double>(next() % 1000) * 0.1, path, {1, 1, 1},
                 1 + static_cast<int>(next() % 8), i);
  }
  const auto d = RunAll(e);
  EXPECT_EQ(d.size(), static_cast<std::size_t>(kCount));
  EXPECT_EQ(e.delivered_count(), kCount);
  // Latency is always positive and finite.
  for (const auto& del : d) {
    EXPECT_GT(del.deliver_time, del.gen_time);
    EXPECT_TRUE(std::isfinite(del.deliver_time));
  }
}

TEST(WormholeEngine, DeterministicReplay) {
  auto run = [] {
    WormholeEngine e({1.0, 1.5, 2.0, 1.0});
    for (int i = 0; i < 50; ++i) {
      e.AddMessage(0.3 * i, {i % 4, (i + 1) % 4}, {1, 1}, 4, i);
    }
    double sum = 0;
    e.Run([&sum](const Delivery& d) { sum += d.deliver_time; });
    return sum;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(WormholeEngine, StoreForwardSerializesFully) {
  // sf at position 1 with an unbounded feeding buffer: the header may only
  // request channel 1 after the tail arrived, so delivery = M t0 + M t1.
  WormholeEngine e({1.0, 2.0});
  e.AddMessage(0.0, {0, 1}, {0, 1}, 4, 0, {1});
  std::vector<Delivery> d;
  e.Run([&d](const Delivery& del) { d.push_back(del); });
  EXPECT_DOUBLE_EQ(d[0].deliver_time, 4 * 1.0 + 4 * 2.0);
}

TEST(WormholeEngine, StoreForwardReleasesFeedingChannelEarly) {
  // With sf + deep buffer, the feeding channel frees at tail arrival even
  // though the downstream channel is busy with another message.
  WormholeEngine e({1.0, 5.0});
  e.AddMessage(0.0, {1}, {1}, 10, 0);            // occupies ch1 in [0, 50)
  e.AddMessage(0.0, {0, 1}, {0, 1}, 4, 1, {1});  // sf into ch1
  e.AddMessage(0.0, {0}, {1}, 2, 2);             // wants ch0 after msg 1
  std::vector<Delivery> d;
  e.Run([&d](const Delivery& del) { d.push_back(del); });
  ASSERT_EQ(d.size(), 3u);
  // Msg 2 proceeds right after msg 1's tail arrives into the sf buffer
  // (t=4), long before ch1 frees at t=50.
  EXPECT_EQ(d[0].user_tag, 2u);
  EXPECT_DOUBLE_EQ(d[0].deliver_time, 6.0);
}

TEST(WormholeEngine, StoreForwardSingleFlitMessage) {
  WormholeEngine e({1.0, 2.0});
  e.AddMessage(0.0, {0, 1}, {0, 1}, 1, 0, {1});
  std::vector<Delivery> d;
  e.Run([&d](const Delivery& del) { d.push_back(del); });
  EXPECT_DOUBLE_EQ(d[0].deliver_time, 3.0);
}

TEST(WormholeEngine, StoreForwardValidation) {
  WormholeEngine e({1.0, 1.0});
  // Position 0 cannot be store-and-forward (no feeding buffer).
  EXPECT_THROW(e.AddMessage(0, {0, 1}, {0, 1}, 2, 0, {0}),
               std::invalid_argument);
  // The feeding buffer must be unbounded.
  EXPECT_THROW(e.AddMessage(0, {0, 1}, {1, 1}, 2, 0, {1}),
               std::invalid_argument);
  EXPECT_THROW(e.AddMessage(0, {0, 1}, {0, 1}, 2, 0, {2}),
               std::invalid_argument);
}

TEST(WormholeEngine, RejectsNonPositiveFlitTimes) {
  EXPECT_THROW(WormholeEngine({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(WormholeEngine({-2.0}), std::invalid_argument);
}

TEST(WormholeEngine, RejectsMalformedMessages) {
  WormholeEngine e({1.0});
  EXPECT_THROW(e.AddMessage(0, {}, {}, 4, 0), std::invalid_argument);
  EXPECT_THROW(e.AddMessage(0, {0}, {1, 1}, 4, 0), std::invalid_argument);
  EXPECT_THROW(e.AddMessage(0, {0}, {1}, 0, 0), std::invalid_argument);
  EXPECT_THROW(e.AddMessage(0, {0}, {1}, WormholeEngine::kMaxFlits + 1, 0),
               std::invalid_argument);
  EXPECT_THROW(e.AddMessage(0, {5}, {1}, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace coc
