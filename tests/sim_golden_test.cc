// Bit-identity guard for the simulator hot path (the zero-allocation /
// arena refactor and any future engine change).
//
// Each golden block below is a verbatim hexfloat snapshot of the per-message
// delivery times (measured window, in delivery order) produced by the
// pre-refactor engine on the mixed-topology system — tree, mesh and crossbar
// clusters behind the tree ICN2 — under three disciplines: cut-through C/D,
// store-and-forward C/D with interleaved slots, and randomized-ascent
// routing. A single ULP of drift in any delivery, or any reordering of the
// event schedule, fails EXPECT_EQ on exact doubles.
//
// Regenerate (after an *intentional* schedule change only) with
//   COC_REGEN_SIM_GOLDEN=1 ./sim_golden_test
// and paste the printed blocks over the arrays.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gtest/gtest.h"
#include "sim/coc_system_sim.h"
#include "system/presets.h"

namespace coc {
namespace {

struct GoldenCase {
  const char* name;
  Icn2SlotPolicy policy;
  CondisMode condis;
  SimConfig::AscentPolicy ascent;
  std::uint64_t seed;
  std::int64_t measured;
  const std::vector<double>& golden;
};

SimResult RunCase(const GoldenCase& c) {
  const auto sys = MakeMixedTopologySystem(MessageFormat{16, 64});
  const CocSystemSim sim(sys, c.policy);
  SimConfig cfg;
  cfg.lambda_g = 2e-4;
  cfg.warmup_messages = 100;
  cfg.measured_messages = c.measured;
  cfg.drain_messages = 50;
  cfg.seed = c.seed;
  cfg.condis_mode = c.condis;
  cfg.ascent = c.ascent;
  cfg.record_deliveries = true;
  return sim.Run(cfg);
}

void CheckOrRegen(const GoldenCase& c) {
  const SimResult r = RunCase(c);
  ASSERT_EQ(r.delivery_times.size(), static_cast<std::size_t>(c.measured));
  const char* regen = std::getenv("COC_REGEN_SIM_GOLDEN");
  if (regen != nullptr && regen[0] == '1') {
    std::printf("// --- %s ---\n", c.name);
    for (std::size_t i = 0; i < r.delivery_times.size(); ++i) {
      std::printf("    %a,%s", r.delivery_times[i],
                  (i % 3 == 2 || i + 1 == r.delivery_times.size()) ? "\n"
                                                                   : "");
    }
    ADD_FAILURE() << c.name << ": regeneration mode, no comparison performed";
    return;
  }
  ASSERT_EQ(c.golden.size(), r.delivery_times.size())
      << c.name << ": golden block missing or stale";
  for (std::size_t i = 0; i < r.delivery_times.size(); ++i) {
    EXPECT_EQ(r.delivery_times[i], c.golden[i]) << c.name << " index " << i;
  }
}

const std::vector<double> kCutThroughGolden = {
    0x1.e8323a9ccea14p+13,    0x1.e83b00f68f1fp+13,    0x1.eabcd77aec9f2p+13,
    0x1.ef011f3db5c3fp+13,    0x1.f55f00bf31597p+13,    0x1.fab6bd785d8cep+13,
    0x1.080f978abe4edp+14,    0x1.0a9313dbc5cf1p+14,    0x1.0c2749f161ee5p+14,
    0x1.0e5e1da236885p+14,    0x1.0f3eba4cc80fep+14,    0x1.118aabb0a8f82p+14,
    0x1.1797916ec6921p+14,    0x1.19882957b34b7p+14,    0x1.1a27f562e6672p+14,
    0x1.1a60e158d266cp+14,    0x1.1be64c771eccep+14,    0x1.1e051b3c6962dp+14,
    0x1.2026c026af3f9p+14,    0x1.2676d4f2acfd3p+14,    0x1.294a67b047663p+14,
    0x1.2aceacdd90663p+14,    0x1.2e6dc38a75762p+14,    0x1.2fdad4f3924abp+14,
    0x1.305a1ebca60fdp+14,    0x1.308876c5ab978p+14,    0x1.314755f70ddd2p+14,
    0x1.354f45968a5bep+14,    0x1.3c51a58d15aa2p+14,    0x1.3f409d5802048p+14,
    0x1.43cc11e926656p+14,    0x1.45e212df09e86p+14,    0x1.45e7d2567c1e4p+14,
    0x1.471956b9d954ap+14,    0x1.49b34390efab1p+14,    0x1.4be09265af02cp+14,
    0x1.4e399473e2d4ep+14,    0x1.4f15822005d4cp+14,    0x1.528b6ad653fb2p+14,
    0x1.53b6c7c0c16dfp+14,    0x1.543cbf4e6453dp+14,    0x1.561fba830fac6p+14,
    0x1.5a5e9b907af43p+14,    0x1.5b1c209aaf2c1p+14,    0x1.5c2f4de72dba3p+14,
    0x1.64a637a66b66cp+14,    0x1.64f8e8a7245dap+14,    0x1.672cb4cce52aap+14,
    0x1.6a08eb4ff741dp+14,    0x1.6ac90c7a19f1p+14,    0x1.6eb6144827afp+14,
    0x1.6f11658cc0b33p+14,    0x1.748f51192d54cp+14,    0x1.795b897277108p+14,
    0x1.7bcd07878d57cp+14,    0x1.7e8b086b68c22p+14,    0x1.7eb7c4fd674b7p+14,
    0x1.7f21560c8d47dp+14,    0x1.7f6fd4a267b08p+14,    0x1.8157f3122a8d9p+14,
    0x1.84af598d3a66ap+14,    0x1.87fe52202d32fp+14,    0x1.90c0ef19faf73p+14,
    0x1.9121e17b1f751p+14,    0x1.92d6bc3f1471bp+14,    0x1.941cd21bb4a96p+14,
    0x1.94d4a55623ed4p+14,    0x1.95db6910dd8c6p+14,    0x1.99119746171bfp+14,
    0x1.9c5bafe7ab742p+14,    0x1.a36e8943fdef4p+14,    0x1.a56bac0c8a94ap+14,
    0x1.a5943066301c4p+14,    0x1.a63122ec7f847p+14,    0x1.a75c63df0d68dp+14,
    0x1.a796c04ca2816p+14,    0x1.ab7cd93192e0cp+14,    0x1.abb5bb5f48af7p+14,
    0x1.ae8aac914ba87p+14,    0x1.b190ebef1a308p+14,    0x1.b4d4f355762bap+14,
    0x1.b4e3fa0e0bd44p+14,    0x1.b5dfea90f912fp+14,    0x1.b988fd26d06b5p+14,
    0x1.c07f049c43f6p+14,    0x1.c1161e6ee34e5p+14,    0x1.c3d74c83b4f6cp+14,
    0x1.c79d8be0d9b7ap+14,    0x1.caa17a82b76e4p+14,    0x1.ce03020f81728p+14,
    0x1.cfd56b9a9d344p+14,    0x1.d29f58c3a31dfp+14,    0x1.d33b226ac0769p+14,
    0x1.d34ce00c67327p+14,    0x1.d3668b1dc8941p+14,    0x1.d3cf3db68540bp+14,
    0x1.d45ff9f5ef793p+14,    0x1.d5a8eb496ffcep+14,    0x1.d5ac7f791c298p+14,
    0x1.d6a630d776434p+14,    0x1.d79a2a63f8ae1p+14,    0x1.d89cf78b39951p+14,
    0x1.d9a16eefcdaf3p+14,    0x1.dc76e4e390343p+14,    0x1.dc867514d56f1p+14,
    0x1.deef05162332bp+14,    0x1.e0d6248314eb5p+14,    0x1.e126f56d4d7cfp+14,
    0x1.e8459db1285e2p+14,    0x1.eb88acc5f8405p+14,    0x1.f53a80871a5f5p+14,
    0x1.fb4e2acd2ad57p+14,    0x1.01b1fb9957d3cp+15,    0x1.03b6adb3946f6p+15,
    0x1.043074689be43p+15,    0x1.0740ddaab752fp+15,    0x1.08506b6d46795p+15,
    0x1.09a64e087ec4bp+15,    0x1.0aeb5462a8004p+15,    0x1.0b028541be8cdp+15,
    0x1.0d432058be6dp+15,    0x1.0d9ad5b8ea7a2p+15,    0x1.0e807c62f38a6p+15,
    0x1.10871df4e5a2ap+15,    0x1.1362e7d411407p+15,    0x1.149ee8daf945fp+15,
    0x1.152411c1ce77bp+15,    0x1.155746a72a858p+15,    0x1.173b696440d69p+15,
    0x1.17751bb0e38c6p+15,    0x1.185b53c582344p+15,    0x1.18edb7eab56f7p+15,
    0x1.19dc31ce1548dp+15,    0x1.1b1a967e189efp+15,    0x1.1c384c2f12bf9p+15,
    0x1.1cfd65a6f29b2p+15,    0x1.1dfda6357e362p+15,    0x1.1fd0cf1d8e48fp+15,
    0x1.2037892f13f5p+15,    0x1.253eaa8f67e37p+15,    0x1.2665c91191ccbp+15,
    0x1.27081be87f953p+15,    0x1.2b1363397ac7p+15,    0x1.2ddcdad21fc86p+15,
    0x1.2e7148e436fa9p+15,    0x1.2f2e6d996c9a7p+15,    0x1.2f533681e51f9p+15,
    0x1.2fdec0b987965p+15,    0x1.300aa12b569bep+15,    0x1.314fd6a88279p+15,
    0x1.327e4760731fp+15,    0x1.32d804de71583p+15,    0x1.3510f3bc682c5p+15,
    0x1.352c1369fe228p+15,    0x1.372b1868e67a6p+15,    0x1.3801399870626p+15,
    0x1.38974f5798e1fp+15,    0x1.3aa4942f27882p+15,    0x1.3c132a8bd3087p+15,
    0x1.3dc1258d9513dp+15,    0x1.3dd7b153aeb01p+15,    0x1.3f2e9df0bacfap+15,
    0x1.3f51096a8bc1bp+15,    0x1.40cf90f0f713dp+15,    0x1.41b6dae45260ap+15,
    0x1.42587d9008836p+15,    0x1.439b88f2c9d67p+15,    0x1.43d43e61a793cp+15,
    0x1.44171cc806755p+15,    0x1.462fd459df239p+15,    0x1.48891586df8ecp+15,
    0x1.48f069d5476cap+15,    0x1.49269763f248bp+15,    0x1.4931008a59864p+15,
    0x1.49f6baf0f8ddep+15,    0x1.4d4b376deea27p+15,    0x1.4d5ec49788f2ap+15,
    0x1.4f4fbc401faf1p+15,    0x1.4fa03fc07da61p+15,    0x1.50d94912d3228p+15,
    0x1.518c9da78e278p+15,    0x1.561674fe48cbap+15,    0x1.577492c3eeda4p+15,
    0x1.58f96601045c3p+15,    0x1.5a289e6350069p+15,    0x1.5b09aa1a01cc4p+15,
    0x1.5b5c25ddfbd97p+15,    0x1.5cdaf8006a275p+15,    0x1.5f2d96961c1e9p+15,
    0x1.5f6e07c83b78p+15,    0x1.6006b0bbe960dp+15,    0x1.6164faa5534aap+15,
    0x1.6327628a86919p+15,    0x1.649ea8ef9fd85p+15,    0x1.6526125d4d1a2p+15,
    0x1.69868fdd516cbp+15,    0x1.6aa7f09ecf64ep+15,    0x1.6b61304a94574p+15,
    0x1.6d3637de45a63p+15,    0x1.6d7917c1d646p+15,    0x1.6e81d9f3da92fp+15,
    0x1.6f7f6ff23d37cp+15,    0x1.6f80c4d7a491cp+15,    0x1.71654f32dac59p+15,
    0x1.717762981e4dp+15,    0x1.7282bb4ffaaccp+15,    0x1.72b42b15ee1cfp+15,
    0x1.7600dea975517p+15,    0x1.76f2d38646e11p+15,    0x1.77301d7156aaep+15,
    0x1.7a759791c9a2dp+15,    0x1.7f791e63235c1p+15,    0x1.7fbb6eb197e17p+15,
    0x1.822ce526b14d4p+15,    0x1.8280a1c54e278p+15,    0x1.83e4bc4ffd309p+15,
    0x1.86439dae41718p+15,    0x1.88eb51815f2a6p+15,    0x1.893aaacc5c443p+15,
    0x1.8bc2e802ffd8ap+15,    0x1.8c5cc1c6d7c06p+15,    0x1.8eca5d14a826bp+15,
    0x1.8f6a0515c2d6cp+15,    0x1.90e4d089dc1edp+15,    0x1.914500ad7132p+15,
    0x1.923830b069731p+15,    0x1.924097ec2b9c4p+15,    0x1.925fd8fb16947p+15,
    0x1.93ab5363af7a3p+15,    0x1.94714ba1c7fb8p+15,    0x1.9826c2bea66bbp+15,
    0x1.986678ab15288p+15,    0x1.98a43f84e9f09p+15,    0x1.9aee2bf8c887cp+15,
    0x1.9af2d1eabc522p+15,    0x1.9b6784ff784b3p+15,    0x1.9bca54c85a239p+15,
    0x1.9f4bfa16ea11fp+15,    0x1.a0f35cae5f266p+15,    0x1.a197dae04e92p+15,
    0x1.a27775572286ep+15,    0x1.a63c4d2cbc3dcp+15,    0x1.a6cf838e67e6ep+15,
    0x1.a9598d074a006p+15,    0x1.ac0c0ddaf7c17p+15,    0x1.adb00fc5f3accp+15,
    0x1.ae45feadc8dbdp+15,    0x1.ae53b1cb6f1bp+15,    0x1.aeb404a879858p+15,
    0x1.afb7dab14e023p+15,};

const std::vector<double> kStoreForwardGolden = {
    0x1.1c8c02ec33474p+14,    0x1.1d21b5a7e2206p+14,    0x1.223301c36f62ap+14,
    0x1.251126aa3678ep+14,    0x1.270e21d97c912p+14,    0x1.28abe06fe98a5p+14,
    0x1.28bba3ed2e928p+14,    0x1.291ca39a0205fp+14,    0x1.2f55153f8796cp+14,
    0x1.326b43186c917p+14,    0x1.33d50b9d8c40dp+14,    0x1.375a20612bb7fp+14,
    0x1.38de81d34d94p+14,    0x1.3a2f9cdd4cae6p+14,    0x1.3af1e8f68e487p+14,
    0x1.3c7a7d18b8d89p+14,    0x1.3e809e6bbfad7p+14,    0x1.3f9b831dc0708p+14,
    0x1.4310e7d521fbbp+14,    0x1.45a4924d814c2p+14,    0x1.478a61357b331p+14,
    0x1.48178edfa8656p+14,    0x1.48196752d08cap+14,    0x1.487ae6220c26cp+14,
    0x1.48fc0d23aaac9p+14,    0x1.49f8d17dd3343p+14,    0x1.4c0eef2065adap+14,
    0x1.4d7df330a317cp+14,    0x1.4e8372892949dp+14,    0x1.568fbded0f2dep+14,
    0x1.58447b65aba7dp+14,    0x1.5a47f48a6f038p+14,    0x1.5b7fde768e36cp+14,
    0x1.5f8647828c979p+14,    0x1.603120143040dp+14,    0x1.6133e07c7148fp+14,
    0x1.64bb4eec72a2bp+14,    0x1.64d6d29961457p+14,    0x1.656aa717bebb7p+14,
    0x1.66cc1e65cd5d1p+14,    0x1.693890a559bf7p+14,    0x1.6b314735b73bfp+14,
    0x1.6eb30bde9e47fp+14,    0x1.6f21d27465292p+14,    0x1.6f95103ff31a3p+14,
    0x1.75cadeda5318dp+14,    0x1.78b4dda10613p+14,    0x1.7d28c060a92f5p+14,
    0x1.7e4d8fcc67facp+14,    0x1.80350bfbd0b76p+14,    0x1.823bde0e798c9p+14,
    0x1.8472fd360e1cap+14,    0x1.894f2408325b8p+14,    0x1.8ba9499a2aefp+14,
    0x1.8cbda388c4cf2p+14,    0x1.8d717a529c6d4p+14,    0x1.92864435c9ce5p+14,
    0x1.a0c8572c3ed13p+14,    0x1.a2fb10d88d9a7p+14,    0x1.aa965ac5fb342p+14,
    0x1.b17cd1dbbc444p+14,    0x1.b42f08ae7f01bp+14,    0x1.b5a324ee63cap+14,
    0x1.b7a1329475a0cp+14,    0x1.bbd0f2bcaa76fp+14,    0x1.c1f4829f6700ap+14,
    0x1.c4a45a8370ee1p+14,    0x1.c52ba5e96cc65p+14,    0x1.c5dcdcc970143p+14,
    0x1.cf2e554d7fa2p+14,    0x1.cfba4105f58fap+14,    0x1.d2c7f46714d87p+14,
    0x1.d7c3429250ad1p+14,    0x1.da3e798eb4876p+14,    0x1.db77124046bb7p+14,
    0x1.de86f76214efbp+14,    0x1.de97cfa00d2bap+14,    0x1.df5aba6fe6c1ap+14,
    0x1.e20560102fea5p+14,    0x1.e5881dec3dba3p+14,    0x1.e730d98071ba2p+14,
    0x1.ea3e3e92e93dap+14,    0x1.eb1b74ba9872fp+14,    0x1.ed7614956a366p+14,
    0x1.eee505d85ce24p+14,    0x1.ef4c8a07ba7cdp+14,    0x1.f379010b160f8p+14,
    0x1.f748c12c00cc1p+14,    0x1.f9a5132d13d67p+14,    0x1.fd5f191163796p+14,
    0x1.fde3f4a89ff14p+14,    0x1.fe9f24dfec4f8p+14,    0x1.020412d113da9p+15,
    0x1.0281d25b7a58ap+15,    0x1.069a39726474dp+15,    0x1.076c919b6d1a5p+15,
    0x1.09067c3278e74p+15,    0x1.098e8fbe93239p+15,    0x1.0ad084de239cep+15,
    0x1.0c4f4af4d9573p+15,    0x1.0d54220dbee3ap+15,    0x1.0dc5c518e672bp+15,
    0x1.0fbb03c19fe2ep+15,    0x1.109ec289203c6p+15,    0x1.115885819924ap+15,
    0x1.117a7ef085d79p+15,    0x1.11a1990738f66p+15,    0x1.12f5cf9609dfbp+15,
    0x1.14a22b7e6d17bp+15,    0x1.157217e431de6p+15,    0x1.15bc4c7a2aec7p+15,
    0x1.15effd2bae65ap+15,    0x1.1616586689021p+15,    0x1.165cd8144a0aap+15,
    0x1.167501a107429p+15,    0x1.17e93f1161408p+15,    0x1.17f48d618f0aep+15,
    0x1.184802b5e8143p+15,    0x1.19602bf19596fp+15,    0x1.1a2aa569cadaep+15,
    0x1.1d263f1ebb6c2p+15,    0x1.1db471f5ad994p+15,    0x1.1dd6685a95278p+15,
    0x1.1f896edd6913fp+15,    0x1.21dc54c512f54p+15,    0x1.23085f963d3fp+15,
    0x1.234ead9082668p+15,    0x1.2832bcf69b439p+15,    0x1.28a777668b0c7p+15,
    0x1.2ccdc2f580604p+15,    0x1.2eeeabba3ecf3p+15,    0x1.3015fb8d59aefp+15,
    0x1.3210c66a83bfbp+15,    0x1.32313e6bf9377p+15,    0x1.32cc5ab2f12c9p+15,
    0x1.3389032cada4ap+15,    0x1.33b3a72f845bp+15,    0x1.35bb85eaf89f5p+15,
    0x1.369ea703b93d1p+15,    0x1.36cb2410b4eb3p+15,    0x1.37284dce318f3p+15,
    0x1.37c2fbe98e518p+15,    0x1.385b564d55a9cp+15,    0x1.3c40d3b8ccfap+15,
    0x1.3c62912e05c4bp+15,    0x1.3cef96a82dfe7p+15,    0x1.3d09ddd8937cfp+15,
    0x1.3d64d24f16bb7p+15,    0x1.3edb0334a1a7fp+15,    0x1.3fab885b81bb7p+15,
    0x1.4013e8bcb3d5ep+15,    0x1.4048c653ae5c5p+15,    0x1.405127d5c253dp+15,
    0x1.40b358d195836p+15,    0x1.411996543ff55p+15,    0x1.43518096690e3p+15,
    0x1.446262af10af5p+15,    0x1.4483a1f64c6e5p+15,    0x1.4514f751b72bbp+15,
    0x1.47b6a505e4da1p+15,    0x1.487cc4c907853p+15,    0x1.48b1638db7921p+15,
    0x1.48b9f1af8fe5ep+15,    0x1.4b38e96f2a4c9p+15,    0x1.4e6ae2ea1b878p+15,
    0x1.51b2deaea9addp+15,    0x1.521fc3aa3d701p+15,    0x1.5232fd1b7bb26p+15,
    0x1.523fec3f571b8p+15,    0x1.5590acd35b87bp+15,    0x1.55d84e93b073cp+15,
    0x1.582696122061dp+15,    0x1.5882e66b3430dp+15,    0x1.58baa664be8fbp+15,
    0x1.58d6dbe97e684p+15,    0x1.59ac51cba89fcp+15,    0x1.5bbad85b3a1c7p+15,
    0x1.5c6f579867743p+15,    0x1.5d86f72bc3e04p+15,    0x1.5df13ff544f7ap+15,
    0x1.5e4f8e22b8107p+15,    0x1.5e682fdd36b8bp+15,    0x1.618174b5fda4cp+15,
    0x1.6240601635e64p+15,    0x1.62d3fda95970dp+15,    0x1.6564b5edd0d22p+15,
    0x1.65727d660f815p+15,    0x1.66c29d4f96e7bp+15,    0x1.66d5984e97dc3p+15,
    0x1.6930b6ea56bbbp+15,    0x1.6935b104ec81ap+15,    0x1.69ccca67efcdp+15,
    0x1.6e502b4637d06p+15,    0x1.6e8ed161afe89p+15,    0x1.70111cddb6424p+15,
    0x1.714482781f741p+15,    0x1.72a349346a55cp+15,    0x1.73e235208e755p+15,
    0x1.73eb331444bb5p+15,    0x1.744a3d8d7d999p+15,    0x1.7650519b31937p+15,
    0x1.76d9f34680a56p+15,    0x1.76ebc38d82d56p+15,    0x1.77d434a22917cp+15,
    0x1.7824703e553a1p+15,    0x1.78957ff7cfe0ep+15,    0x1.78eb38290616ep+15,
    0x1.79fa3d0d20669p+15,    0x1.7b7181033ab3p+15,    0x1.7bb09b1b88c19p+15,
    0x1.7cd34a3078d8ap+15,    0x1.807f7a177d84dp+15,    0x1.81497cb4ae4ecp+15,
    0x1.85f4c9a97c7b8p+15,    0x1.87b057f09cdddp+15,    0x1.87d70f7330bb5p+15,
    0x1.87f3256626b3bp+15,    0x1.880f8ec4b8bf3p+15,    0x1.897752d0ea5a2p+15,
    0x1.8cc69cebf00fp+15,    0x1.8d979d5b57d33p+15,    0x1.903f9c006a7bdp+15,
    0x1.920d937c8d049p+15,    0x1.9476d73a381bep+15,    0x1.94c6a1aff1799p+15,
    0x1.94ecd00821b47p+15,    0x1.960672fc136e1p+15,    0x1.97abbe0c1911cp+15,
    0x1.97eb3d437c872p+15,    0x1.99936ecdd276ep+15,    0x1.9a93893591279p+15,
    0x1.9c30c1b18c5e6p+15,    0x1.9e89b1de66ebp+15,    0x1.9f394f516ca19p+15,
    0x1.a1006419129d8p+15,    0x1.a2b55046c455cp+15,    0x1.a4c7c11937f7bp+15,
    0x1.a599c1e4d5453p+15,    0x1.a6b33df4f3f8cp+15,    0x1.a7fa27e72b146p+15,
    0x1.aafeb4f21b90dp+15,    0x1.ab7c327887e3p+15,    0x1.ab886f13f577ep+15,
    0x1.aba39fdb60382p+15,    0x1.ac429a7f66f2dp+15,    0x1.ade71c5b48028p+15,
    0x1.b151483a4bc49p+15,    0x1.b7a7fb8180574p+15,    0x1.b96e1a141c5fdp+15,
    0x1.bad7387d8314fp+15,};

const std::vector<double> kRandomizedGolden = {
    0x1.19627b202703ap+14,    0x1.1966482b97638p+14,    0x1.19a2b37d2becbp+14,
    0x1.1a86be9e41d8p+14,    0x1.1f92ce1b06d79p+14,    0x1.265b37027ae9ap+14,
    0x1.2825a1203b9bap+14,    0x1.2b4f8f3717b12p+14,    0x1.341d9477d2495p+14,
    0x1.35dca99a74abep+14,    0x1.3e3fed60b1a52p+14,    0x1.3eb8f23c0d4e1p+14,
    0x1.43f31170509e1p+14,    0x1.44a58023e19dbp+14,    0x1.46014b5bc987p+14,
    0x1.46a4d590e4a4bp+14,    0x1.4acd77e3e07d9p+14,    0x1.4ba731c4f7ad8p+14,
    0x1.4c783d5c3a5fep+14,    0x1.4d7dfb4fab0e7p+14,    0x1.500be890afcbfp+14,
    0x1.52d8acea1ab9fp+14,    0x1.53249708eb3ddp+14,    0x1.53b04f35db466p+14,
    0x1.587ba45c7a729p+14,    0x1.5db77a1f51e89p+14,    0x1.66e6ae0d55812p+14,
    0x1.69d6c174c9309p+14,    0x1.6e34d17cfb05cp+14,    0x1.70c8dcba89cc2p+14,
    0x1.724f577986574p+14,    0x1.72b00623a3a08p+14,    0x1.73a94eb25b4b2p+14,
    0x1.76f49f3e81a6cp+14,    0x1.7772b93feef6bp+14,    0x1.78594477f5a36p+14,
    0x1.7d9f86c7662fdp+14,    0x1.7df7215890852p+14,    0x1.85c926af4aef1p+14,
    0x1.89aa54f5f3e17p+14,    0x1.8b189292749c3p+14,    0x1.932b41322aec8p+14,
    0x1.987c115938cadp+14,    0x1.9a2ec3002241ap+14,    0x1.9ca0040296fdap+14,
    0x1.9caf87061a944p+14,    0x1.a10e13a4b816cp+14,    0x1.a29b59910536bp+14,
    0x1.a45159d96e6d1p+14,    0x1.a68e35f8f2c9bp+14,    0x1.accc2c9ae4ab1p+14,
    0x1.af0f600ce1d56p+14,    0x1.b2ddf14a2ee33p+14,    0x1.b37eb7a13efcdp+14,
    0x1.b41808e1aa7fp+14,    0x1.bc6eeab518862p+14,    0x1.be96b56009062p+14,
    0x1.bea3286179824p+14,    0x1.c021f0759ee25p+14,    0x1.cc6afed00453p+14,
    0x1.d064151376977p+14,    0x1.d09ef809a1193p+14,    0x1.d2c8c24094179p+14,
    0x1.d355474f410a3p+14,    0x1.d79580ed1cf3ep+14,    0x1.de05da9c38d8ep+14,
    0x1.dfec1b0e4b5dbp+14,    0x1.dffdbe84383fep+14,    0x1.e033c1af4899ep+14,
    0x1.e1803f2fb72f2p+14,    0x1.e2300e11120cp+14,    0x1.e68dcb800617p+14,
    0x1.ee55656e34ae5p+14,    0x1.eec74e56a6365p+14,    0x1.ef0295e39eae7p+14,
    0x1.f01b70e82dd73p+14,    0x1.f063a7376823ep+14,    0x1.f816e45c3a827p+14,
    0x1.fac05f542cf45p+14,    0x1.fdc102d23afb6p+14,    0x1.ff4d641fe0fep+14,
    0x1.0132102ac12a4p+15,    0x1.0187f5cd1b645p+15,    0x1.026184c0b4f58p+15,
    0x1.027e2bd502763p+15,    0x1.03202e18a2485p+15,    0x1.0434b75687ed9p+15,
    0x1.0665143046857p+15,    0x1.09fb1cbd8b4c3p+15,    0x1.0aa722bb9c554p+15,
    0x1.0ac41257475c4p+15,    0x1.0af2809d468c7p+15,    0x1.0e6658db549cbp+15,
    0x1.0e6af68a17b56p+15,    0x1.0eb7f64013d38p+15,    0x1.111fd4fa7a8a2p+15,
    0x1.112c1ab64a44ap+15,    0x1.12212e1edb576p+15,    0x1.150b637065496p+15,
    0x1.156cc5ce92f5bp+15,    0x1.16b7e3c52e32dp+15,    0x1.176bb1464779p+15,
    0x1.178e166de24cdp+15,    0x1.1ad48ed1dcb78p+15,    0x1.1ad74d5ac2704p+15,
    0x1.1ba3b891022ecp+15,    0x1.1fb0808fe7901p+15,    0x1.205a03dd6c804p+15,
    0x1.2065b92d79b1fp+15,    0x1.2130f412b57ap+15,    0x1.24b0af32ee217p+15,
    0x1.24f7718a7bc52p+15,    0x1.263cec79f97c5p+15,    0x1.279f5de920808p+15,
    0x1.27a8542ec24bap+15,    0x1.34e1d509b7907p+15,    0x1.35ff4ce9e4b7ap+15,
    0x1.3640398bf754p+15,    0x1.36c64df8f59fdp+15,    0x1.37dd31d558765p+15,
    0x1.392b0de22883ep+15,    0x1.39395a1b68e31p+15,    0x1.395f7af643f24p+15,
    0x1.397648ba51994p+15,    0x1.3b14c5e9d2de9p+15,    0x1.3b321ac89fbb3p+15,
    0x1.3cc662849dcfdp+15,    0x1.3e4f67d31121ap+15,    0x1.3ef835dd15b61p+15,
    0x1.3fe84a91761e2p+15,    0x1.405017e6a415fp+15,    0x1.40a63641df0adp+15,
    0x1.41681840367f6p+15,    0x1.41ac47be9d98cp+15,    0x1.41aea5befa1adp+15,
    0x1.4226ca44c037p+15,    0x1.4263e8cc90067p+15,    0x1.42e668b591b7ap+15,
    0x1.4387ae48c690ap+15,    0x1.43c2c1d527c83p+15,    0x1.44639f9477577p+15,
    0x1.4474859f12168p+15,    0x1.45ac225f490fep+15,    0x1.46429a1b75fd2p+15,
    0x1.4d3be98bf4698p+15,    0x1.4d6a0d09835a1p+15,    0x1.4ed067a38fa3dp+15,
    0x1.4f3cbf01f19d1p+15,    0x1.513a95099944p+15,    0x1.575a8aacd8ee3p+15,};

TEST(SimGolden, CutThroughClusterMajor) {
  CheckOrRegen({"cut-through / cluster-major / deterministic",
                Icn2SlotPolicy::kClusterMajor, CondisMode::kCutThrough,
                SimConfig::AscentPolicy::kDeterministic, 7, 250,
                kCutThroughGolden});
}

TEST(SimGolden, StoreForwardInterleaved) {
  CheckOrRegen({"store-forward / interleaved / deterministic",
                Icn2SlotPolicy::kInterleaved, CondisMode::kStoreForward,
                SimConfig::AscentPolicy::kDeterministic, 11, 250,
                kStoreForwardGolden});
}

TEST(SimGolden, RandomizedAscent) {
  CheckOrRegen({"cut-through / cluster-major / randomized ascent",
                Icn2SlotPolicy::kClusterMajor, CondisMode::kCutThrough,
                SimConfig::AscentPolicy::kRandomized, 13, 150,
                kRandomizedGolden});
}

}  // namespace
}  // namespace coc
