// System-level simulator tests: path construction against the model's link
// accounting, traffic generator statistics, conservation, and end-to-end
// behaviour (zero-load agreement, load response, bottleneck claim).
#include <algorithm>
#include <cmath>
#include <map>

#include "gtest/gtest.h"
#include "model/hop_distribution.h"
#include "sim/coc_system_sim.h"
#include "sim/traffic.h"
#include "system/presets.h"
#include "topology/m_port_n_tree.h"

namespace coc {
namespace {

SimConfig FastConfig(double lambda, std::uint64_t seed = 7) {
  SimConfig cfg;
  cfg.lambda_g = lambda;
  cfg.warmup_messages = 300;
  cfg.measured_messages = 3000;
  cfg.drain_messages = 300;
  cfg.seed = seed;
  return cfg;
}

TEST(CocSystemSim, IntraPathLengthIsTwiceNcaLevel) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  // Cluster 7 has n=3 (16 nodes), base computed from sizes 4,4,4,8,8,8,16,16.
  const auto base = sys.ClusterBase(7);
  const MPortNTree tree(4, 3);
  for (std::int64_t a = 0; a < 16; ++a) {
    for (std::int64_t b = 0; b < 16; ++b) {
      if (a == b) continue;
      const auto path = sim.BuildPath(base + a, base + b);
      EXPECT_EQ(path.size(),
                static_cast<std::size_t>(2 * tree.NcaLevel(a, b)));
    }
  }
}

TEST(CocSystemSim, InterPathLengthIsRPlus2LPlusV) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const MPortNTree icn2(4, 2);
  for (int ci : {0, 3, 7}) {
    for (int cj : {1, 5, 6}) {
      if (ci == cj) continue;
      const MPortNTree ti(4, sys.cluster(ci).n), tj(4, sys.cluster(cj).n);
      for (std::int64_t ls = 0; ls < sys.NodesInCluster(ci); ls += 3) {
        for (std::int64_t ld = 0; ld < sys.NodesInCluster(cj); ld += 3) {
          const auto path = sim.BuildPath(sys.ClusterBase(ci) + ls,
                                          sys.ClusterBase(cj) + ld);
          const int r = std::max(1, ti.NcaLevel(ls, 0));
          const int v = std::max(1, tj.NcaLevel(ld, 0));
          const int l = icn2.NcaLevel(sim.Icn2Slot(ci), sim.Icn2Slot(cj));
          EXPECT_EQ(path.size(), static_cast<std::size_t>(r + 2 * l + v));
        }
      }
    }
  }
}

TEST(CocSystemSim, InterPathHopDistributionMatchesEq6) {
  // Sampling sources uniformly, the ECN1 ascent length r must follow the
  // Eq. (6) distribution — the analytical model relies on this.
  const auto sys = MakeSystem544(MessageFormat{32, 256});
  CocSystemSim sim(sys);
  const int ci = 15;  // n=5 cluster, 64 nodes
  const MPortNTree tree(4, 5);
  const HopDistribution hops(4, 5);
  std::map<int, double> census;
  const auto n_i = sys.NodesInCluster(ci);
  for (std::int64_t ls = 0; ls < n_i; ++ls) {
    census[std::max(1, tree.NcaLevel(ls, 0))] += 1.0;
  }
  for (int r = 1; r <= 5; ++r) {
    // The census over N_i sources approximates P over N_i - 1 destinations;
    // both include the anchor's own leaf at r=1, so agreement is ~1/N_i.
    EXPECT_NEAR(census[r] / static_cast<double>(n_i), hops.P(r), 0.05)
        << "r=" << r;
  }
}

TEST(Traffic, PoissonInterarrivalMean) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  SimConfig cfg;
  cfg.lambda_g = 1e-3;
  cfg.seed = 11;
  const auto events = GenerateTraffic(sys, cfg, 20000);
  ASSERT_EQ(events.size(), 20000u);
  const double expected_gap =
      1.0 / (cfg.lambda_g * static_cast<double>(sys.TotalNodes()));
  const double mean_gap = events.back().time / 20000.0;
  EXPECT_NEAR(mean_gap, expected_gap, 0.05 * expected_gap);
  // Times strictly increasing.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].time, events[i - 1].time);
  }
}

TEST(Traffic, UniformDestinationsExcludeSelfAndCoverAll) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  SimConfig cfg;
  cfg.lambda_g = 1e-3;
  cfg.seed = 13;
  const auto events = GenerateTraffic(sys, cfg, 50000);
  std::vector<int> dst_count(static_cast<std::size_t>(sys.TotalNodes()), 0);
  for (const auto& e : events) {
    EXPECT_NE(e.src, e.dst);
    ++dst_count[static_cast<std::size_t>(e.dst)];
  }
  for (auto c : dst_count) EXPECT_GT(c, 0);
  // Rough uniformity: each node receives ~1/N of the traffic.
  const double expect = 50000.0 / static_cast<double>(sys.TotalNodes());
  for (auto c : dst_count) EXPECT_NEAR(c, expect, 6 * std::sqrt(expect));
}

TEST(Traffic, HotspotFractionRespected) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  SimConfig cfg;
  cfg.lambda_g = 1e-3;
  cfg.workload = Workload::Hotspot(0.3, 5);
  cfg.seed = 17;
  const auto events = GenerateTraffic(sys, cfg, 50000);
  int hot = 0;
  for (const auto& e : events) hot += (e.dst == 5);
  // Hot share = p (when src != hot) plus the uniform background.
  const double n = static_cast<double>(sys.TotalNodes());
  const double expected =
      0.3 * (n - 1) / n + (1.0 - 0.3 * (n - 1) / n) / (n - 1);
  EXPECT_NEAR(hot / 50000.0, expected, 0.02);
}

TEST(Traffic, ClusterLocalKeepsRequestedShareInside) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  SimConfig cfg;
  cfg.lambda_g = 1e-3;
  cfg.workload = Workload::ClusterLocal(0.7);
  cfg.seed = 19;
  const auto events = GenerateTraffic(sys, cfg, 50000);
  int local = 0;
  for (const auto& e : events) {
    local += (sys.ClusterOfNode(e.src) == sys.ClusterOfNode(e.dst));
  }
  EXPECT_NEAR(local / 50000.0, 0.7, 0.02);
}

TEST(Traffic, PermutationIsFixedAndFixedPointFree) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  SimConfig cfg;
  cfg.lambda_g = 1e-3;
  cfg.workload = Workload::Permutation();
  cfg.seed = 23;
  const auto events = GenerateTraffic(sys, cfg, 5000);
  std::map<std::int64_t, std::int64_t> mapping;
  for (const auto& e : events) {
    EXPECT_NE(e.src, e.dst);
    const auto it = mapping.find(e.src);
    if (it == mapping.end()) {
      mapping[e.src] = e.dst;
    } else {
      EXPECT_EQ(it->second, e.dst);
    }
  }
}

TEST(CocSystemSim, AllMessagesDelivered) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const auto cfg = FastConfig(1e-4);
  const auto result = sim.Run(cfg);
  EXPECT_EQ(result.delivered, cfg.warmup_messages + cfg.measured_messages +
                                  cfg.drain_messages);
  EXPECT_EQ(result.latency.Count(),
            static_cast<std::uint64_t>(cfg.measured_messages));
  EXPECT_EQ(result.intra_latency.Count() + result.inter_latency.Count(),
            result.latency.Count());
}

TEST(CocSystemSim, InterShareTracksOutgoingProbability) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const auto result = sim.Run(FastConfig(1e-4));
  // All clusters have U = 1 - 7/31.
  const double u = sys.OutgoingProbability(0);
  const double share = static_cast<double>(result.inter_latency.Count()) /
                       static_cast<double>(result.latency.Count());
  EXPECT_NEAR(share, u, 0.03);
}

TEST(CocSystemSim, PerClusterStatsPartitionTheTotal) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const auto r = sim.Run(FastConfig(1e-4));
  ASSERT_EQ(r.per_cluster.size(), 8u);
  std::uint64_t total = 0;
  RunningStats merged;
  for (const auto& s : r.per_cluster) {
    total += s.Count();
    merged.Merge(s);
  }
  EXPECT_EQ(total, r.latency.Count());
  EXPECT_NEAR(merged.Mean(), r.latency.Mean(), 1e-9);
  // Source clusters contribute in proportion to their size.
  const double per_node = static_cast<double>(r.latency.Count()) /
                          static_cast<double>(sys.TotalNodes());
  for (int i = 0; i < 8; ++i) {
    const double expected =
        per_node * static_cast<double>(sys.NodesInCluster(i));
    EXPECT_NEAR(static_cast<double>(
                    r.per_cluster[static_cast<std::size_t>(i)].Count()),
                expected, 6 * std::sqrt(expected));
  }
}

TEST(CocSystemSim, PerClusterLatencyTracksModelBlend) {
  // The simulated per-cluster means order the same way as the model's
  // per-cluster blended latencies (Eq. 1): bigger clusters keep more
  // traffic on the fast ICN1 and see lower means.
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const auto r = sim.Run(FastConfig(1e-4));
  // Clusters 0..2 (n=1, 4 nodes, U=0.96) vs clusters 6..7 (n=3, 16 nodes,
  // U=0.83): the latter blend in more cheap intra traffic.
  EXPECT_GT(r.per_cluster[0].Mean(), r.per_cluster[7].Mean());
}

TEST(CocSystemSim, DeterministicAcrossRuns) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const auto a = sim.Run(FastConfig(2e-4, 31));
  const auto b = sim.Run(FastConfig(2e-4, 31));
  EXPECT_DOUBLE_EQ(a.latency.Mean(), b.latency.Mean());
  const auto c = sim.Run(FastConfig(2e-4, 32));
  EXPECT_NE(a.latency.Mean(), c.latency.Mean());
}

TEST(CocSystemSim, LatencyIncreasesWithLoad) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const double low = sim.Run(FastConfig(5e-5)).latency.Mean();
  const double high = sim.Run(FastConfig(8e-4)).latency.Mean();
  EXPECT_GT(high, low);
}

TEST(CocSystemSim, InterLatencyExceedsIntra) {
  // ECN1 is the slower Net.2 and inter paths are longer.
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const auto r = sim.Run(FastConfig(1e-4));
  EXPECT_GT(r.inter_latency.Mean(), r.intra_latency.Mean());
}

TEST(CocSystemSim, UtilizationGrowsWithLoadAndIcn2IsBusiest) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const auto lo = sim.Run(FastConfig(5e-5));
  const auto hi = sim.Run(FastConfig(5e-4));
  EXPECT_GT(hi.icn2_util.Mean(hi.duration), lo.icn2_util.Mean(lo.duration));
  // The paper's §4 claim: the inter-cluster networks, especially ICN2, are
  // the bottleneck (per-channel, ICN2 node links carry whole clusters).
  EXPECT_GT(hi.icn2_util.Mean(hi.duration), hi.icn1_util.Mean(hi.duration));
}

TEST(CocSystemSim, StoreForwardAddsSerializationAtLightLoad) {
  // At near-zero load, store-and-forward C/Ds add roughly one full message
  // serialization per re-injection versus cut-through.
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  auto ct = FastConfig(2e-5);
  auto sf = FastConfig(2e-5);
  sf.condis_mode = CondisMode::kStoreForward;
  const auto rc = sim.Run(ct);
  const auto rs = sim.Run(sf);
  EXPECT_GT(rs.inter_latency.Mean(), rc.inter_latency.Mean());
  // Intra-cluster traffic is untouched by the C/D discipline.
  EXPECT_NEAR(rs.intra_latency.Mean(), rc.intra_latency.Mean(),
              0.05 * rc.intra_latency.Mean());
}

TEST(CocSystemSim, StoreForwardRejectsBoundedCondisBuffers) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  auto cfg = FastConfig(1e-4);
  cfg.condis_mode = CondisMode::kStoreForward;
  cfg.condis_buffer_flits = 4;
  EXPECT_THROW(sim.Run(cfg), std::invalid_argument);
}

TEST(CocSystemSim, SlotPoliciesProduceValidDistinctAssignments) {
  const auto sys = MakeSystem1120(MessageFormat{32, 256});
  CocSystemSim inter(sys, Icn2SlotPolicy::kInterleaved);
  CocSystemSim major(sys, Icn2SlotPolicy::kClusterMajor);
  std::vector<bool> seen(32, false);
  bool any_diff = false;
  for (int i = 0; i < 32; ++i) {
    const auto s = inter.Icn2Slot(i);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 32);
    ASSERT_FALSE(seen[static_cast<std::size_t>(s)]) << "slot reused";
    seen[static_cast<std::size_t>(s)] = true;
    EXPECT_EQ(major.Icn2Slot(i), i);
    any_diff = any_diff || (s != i);
  }
  EXPECT_TRUE(any_diff);
  // The four largest clusters (28..31) land under distinct ICN2 leaves
  // (4 slots per leaf with m=8).
  std::vector<std::int64_t> leaves;
  for (int i = 28; i < 32; ++i) leaves.push_back(inter.Icn2Slot(i) / 4);
  std::sort(leaves.begin(), leaves.end());
  EXPECT_TRUE(std::adjacent_find(leaves.begin(), leaves.end()) == leaves.end());
}

TEST(CocSystemSim, MaxUtilizationBoundsMean) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  const auto r = sim.Run(FastConfig(3e-4));
  EXPECT_GE(r.icn2_util.Max(r.duration), r.icn2_util.Mean(r.duration));
  EXPECT_LE(r.icn2_util.Max(r.duration), 1.0 + 1e-9);
}

TEST(CocSystemSim, RandomizedAscentDeliversEverythingDeterministically) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  auto cfg = FastConfig(2e-4, 51);
  cfg.ascent = SimConfig::AscentPolicy::kRandomized;
  const auto a = sim.Run(cfg);
  EXPECT_EQ(a.delivered, cfg.warmup_messages + cfg.measured_messages +
                             cfg.drain_messages);
  const auto b = sim.Run(cfg);
  EXPECT_DOUBLE_EQ(a.latency.Mean(), b.latency.Mean());
  // Routing entropy changes the schedule relative to deterministic ascent.
  auto det = cfg;
  det.ascent = SimConfig::AscentPolicy::kDeterministic;
  EXPECT_NE(sim.Run(det).latency.Mean(), a.latency.Mean());
}

TEST(CocSystemSim, UnitCondisBufferIncreasesLatency) {
  // Removing the deep concentrate/dispatch buffers exposes ECN1 to ICN2
  // backpressure; at moderate load latency can only get worse.
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  CocSystemSim sim(sys);
  auto deep = FastConfig(4e-4);
  auto unit = FastConfig(4e-4);
  unit.condis_buffer_flits = 1;
  EXPECT_GE(sim.Run(unit).latency.Mean(), sim.Run(deep).latency.Mean());
}

}  // namespace
}  // namespace coc
