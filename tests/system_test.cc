// Tests for the system configuration layer: Table 1/2 presets, derived sizes,
// outgoing probability (Eq. 2), cluster/node mapping, validation.
#include <stdexcept>

#include "gtest/gtest.h"
#include "system/network_characteristics.h"
#include "system/presets.h"
#include "system/system_config.h"

namespace coc {
namespace {

TEST(NetworkCharacteristics, Table2ServiceTimes) {
  // Net.1: beta = 1/500; t_cn = 0.5*0.01 + 256/500; t_cs = 0.02 + 256/500.
  const auto net1 = Net1();
  EXPECT_DOUBLE_EQ(net1.beta(), 1.0 / 500.0);
  EXPECT_DOUBLE_EQ(net1.TCn(256), 0.005 + 256.0 / 500.0);
  EXPECT_DOUBLE_EQ(net1.TCs(256), 0.02 + 256.0 / 500.0);
  const auto net2 = Net2();
  EXPECT_DOUBLE_EQ(net2.TCn(512), 0.025 + 512.0 / 250.0);
  EXPECT_DOUBLE_EQ(net2.TCs(512), 0.01 + 512.0 / 250.0);
}

TEST(NetworkCharacteristics, ValidationRejectsNonPositiveBandwidth) {
  NetworkCharacteristics bad{0.0, 0.01, 0.01};
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  NetworkCharacteristics neg{100.0, -0.1, 0.01};
  EXPECT_THROW(neg.Validate(), std::invalid_argument);
}

TEST(MessageFormat, ValidationRejectsBadValues) {
  MessageFormat bad{0, 256};
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  MessageFormat bad2{32, 0};
  EXPECT_THROW(bad2.Validate(), std::invalid_argument);
}

TEST(SystemConfig, Table1Row1TotalsAndSizes) {
  const auto sys = MakeSystem1120(MessageFormat{32, 256});
  EXPECT_EQ(sys.m(), 8);
  EXPECT_EQ(sys.num_clusters(), 32);
  EXPECT_EQ(sys.TotalNodes(), 1120);
  EXPECT_EQ(sys.NodesInCluster(0), 8);    // n=1: 2*4^1
  EXPECT_EQ(sys.NodesInCluster(12), 32);  // n=2: 2*4^2
  EXPECT_EQ(sys.NodesInCluster(31), 128); // n=3: 2*4^3
  // ICN2: C=32 concentrators in an 8-port n_c-tree: 2*4^2 = 32 => n_c = 2.
  EXPECT_EQ(sys.icn2_depth(), 2);
  EXPECT_TRUE(sys.icn2_exact_fit());
}

TEST(SystemConfig, Table1Row2TotalsAndSizes) {
  const auto sys = MakeSystem544(MessageFormat{64, 512});
  EXPECT_EQ(sys.m(), 4);
  EXPECT_EQ(sys.num_clusters(), 16);
  EXPECT_EQ(sys.TotalNodes(), 544);
  EXPECT_EQ(sys.NodesInCluster(0), 16);   // n=3: 2*2^3
  EXPECT_EQ(sys.NodesInCluster(8), 32);   // n=4
  EXPECT_EQ(sys.NodesInCluster(15), 64);  // n=5
  // C=16 in a 4-port n_c-tree: 2*2^3 = 16 => n_c = 3.
  EXPECT_EQ(sys.icn2_depth(), 3);
  EXPECT_TRUE(sys.icn2_exact_fit());
}

TEST(SystemConfig, OutgoingProbabilityMatchesEq2) {
  const auto sys = MakeSystem1120(MessageFormat{32, 256});
  // U^(i) = 1 - (N_i - 1)/(N - 1).
  EXPECT_NEAR(sys.OutgoingProbability(0), 1.0 - 7.0 / 1119.0, 1e-15);
  EXPECT_NEAR(sys.OutgoingProbability(31), 1.0 - 127.0 / 1119.0, 1e-15);
  // Larger clusters keep more traffic inside.
  EXPECT_LT(sys.OutgoingProbability(31), sys.OutgoingProbability(0));
}

TEST(SystemConfig, ClusterOfNodeRoundTrips) {
  const auto sys = MakeSystem544(MessageFormat{32, 256});
  for (int i = 0; i < sys.num_clusters(); ++i) {
    const auto base = sys.ClusterBase(i);
    EXPECT_EQ(sys.ClusterOfNode(base), i);
    EXPECT_EQ(sys.ClusterOfNode(base + sys.NodesInCluster(i) - 1), i);
  }
  EXPECT_EQ(sys.ClusterOfNode(0), 0);
  EXPECT_EQ(sys.ClusterOfNode(sys.TotalNodes() - 1), sys.num_clusters() - 1);
}

TEST(SystemConfig, RejectsMalformedInput) {
  EXPECT_THROW(SystemConfig(5, {ClusterConfig{1, Net1(), Net2()}}, Net1(),
                            MessageFormat{}),
               std::invalid_argument);
  EXPECT_THROW(SystemConfig(4, {}, Net1(), MessageFormat{}),
               std::invalid_argument);
  EXPECT_THROW(SystemConfig(4, {ClusterConfig{0, Net1(), Net2()}}, Net1(),
                            MessageFormat{}),
               std::invalid_argument);
}

TEST(SystemConfig, PartialIcn2OccupancyDetected) {
  // C=3 clusters with m=4 (k=2): 2*2^1 = 4 slots at depth 1 => not exact.
  std::vector<ClusterConfig> clusters(3, ClusterConfig{1, Net1(), Net2()});
  SystemConfig sys(4, clusters, Net1(), MessageFormat{});
  EXPECT_EQ(sys.icn2_depth(), 1);
  EXPECT_FALSE(sys.icn2_exact_fit());
}

TEST(Presets, SmallAndTinyAreConsistent) {
  const auto small = MakeSmallSystem(MessageFormat{16, 64});
  EXPECT_EQ(small.num_clusters(), 8);
  EXPECT_TRUE(small.icn2_exact_fit());
  const auto tiny = MakeTinySystem(MessageFormat{16, 64});
  EXPECT_EQ(tiny.num_clusters(), 4);
  EXPECT_TRUE(tiny.icn2_exact_fit());
  EXPECT_EQ(tiny.TotalNodes(), 4 * 8);  // 4 clusters of 2*2^2 nodes
}

}  // namespace
}  // namespace coc
