// Structural and routing invariants of the m-port n-tree substrate.
//
// The key property-style test is NcaCensusMatchesClosedForm: the exact
// destination census by NCA level must equal the closed-form counts behind
// the paper's Eq. (6) for *every* source node — this pins the topology and
// the analytical hop distribution to each other.
#include <cstdint>
#include <map>
#include <set>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "topology/m_port_n_tree.h"

namespace coc {
namespace {

struct TreeCase {
  int m;
  int n;
};

class TreeTest : public ::testing::TestWithParam<TreeCase> {};

std::int64_t PowI(std::int64_t b, int e) {
  std::int64_t r = 1;
  while (e-- > 0) r *= b;
  return r;
}

TEST_P(TreeTest, NodeAndSwitchCountsMatchDefinition) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  const std::int64_t k = m / 2;
  EXPECT_EQ(t.num_nodes(), 2 * PowI(k, n));
  EXPECT_EQ(t.num_switches(), (2 * n - 1) * PowI(k, n - 1));
  std::int64_t total = 0;
  for (int l = 1; l <= n; ++l) total += t.SwitchesAtLevel(l);
  EXPECT_EQ(total, t.num_switches());
  EXPECT_EQ(t.SwitchesAtLevel(n), PowI(k, n - 1));
  EXPECT_EQ(t.SwitchesAtLevel(0), 0);
  EXPECT_EQ(t.SwitchesAtLevel(n + 1), 0);
}

TEST_P(TreeTest, ChannelCountIsTwoNTimesNodes) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  EXPECT_EQ(t.num_channels(), 2 * n * t.num_nodes());
}

TEST_P(TreeTest, ChannelEndpointsAreConsistent) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  for (std::int64_t c = 0; c < t.num_channels(); ++c) {
    const ChannelInfo& info = t.Channel(c);
    switch (info.kind) {
      case ChannelKind::kNodeToSwitch:
        EXPECT_TRUE(info.from.is_node);
        EXPECT_FALSE(info.to.is_node);
        EXPECT_EQ(info.to.level, 1);
        break;
      case ChannelKind::kSwitchToNode:
        EXPECT_FALSE(info.from.is_node);
        EXPECT_TRUE(info.to.is_node);
        EXPECT_EQ(info.from.level, 1);
        break;
      case ChannelKind::kSwitchUp:
        EXPECT_FALSE(info.from.is_node);
        EXPECT_FALSE(info.to.is_node);
        EXPECT_EQ(info.to.level, info.from.level + 1);
        break;
      case ChannelKind::kSwitchDown:
        EXPECT_FALSE(info.from.is_node);
        EXPECT_FALSE(info.to.is_node);
        EXPECT_EQ(info.to.level, info.from.level - 1);
        break;
    }
    EXPECT_GE(info.from.index, 0);
    EXPECT_GE(info.to.index, 0);
  }
}

TEST_P(TreeTest, NcaLevelIsSymmetricAndBounded) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  const std::int64_t stride = std::max<std::int64_t>(1, t.num_nodes() / 37);
  for (std::int64_t a = 0; a < t.num_nodes(); a += stride) {
    EXPECT_EQ(t.NcaLevel(a, a), 0);
    for (std::int64_t b = 0; b < t.num_nodes(); b += stride) {
      if (a == b) continue;
      const int h = t.NcaLevel(a, b);
      EXPECT_GE(h, 1);
      EXPECT_LE(h, n);
      EXPECT_EQ(h, t.NcaLevel(b, a));
    }
  }
}

TEST_P(TreeTest, NcaCensusMatchesClosedForm) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  const std::int64_t k = m / 2;
  // Closed-form destination counts by NCA level (basis of Eq. 6):
  // h < n: k^h - k^{h-1};   h = n: 2k^n - k^{n-1}.
  const std::int64_t stride = std::max<std::int64_t>(1, t.num_nodes() / 11);
  for (std::int64_t src = 0; src < t.num_nodes(); src += stride) {
    const auto census = t.NcaCensus(src);
    ASSERT_EQ(census.size(), static_cast<std::size_t>(n));
    for (int h = 1; h < n; ++h) {
      EXPECT_EQ(census[static_cast<std::size_t>(h - 1)],
                PowI(k, h) - PowI(k, h - 1))
          << "src=" << src << " h=" << h;
    }
    EXPECT_EQ(census[static_cast<std::size_t>(n - 1)],
              2 * PowI(k, n) - PowI(k, n - 1))
        << "src=" << src;
    EXPECT_EQ(std::accumulate(census.begin(), census.end(), std::int64_t{0}),
              t.num_nodes() - 1);
  }
}

// Validates one route end to end: correct length, contiguous endpoints,
// ascend-then-descend phase structure, correct terminals.
void CheckRoute(const MPortNTree& t, std::int64_t src, std::int64_t dst) {
  const auto path = t.Route(src, dst);
  const int h = t.NcaLevel(src, dst);
  ASSERT_EQ(path.size(), static_cast<std::size_t>(2 * h));
  const ChannelInfo& first = t.Channel(path.front());
  const ChannelInfo& last = t.Channel(path.back());
  EXPECT_EQ(first.kind, ChannelKind::kNodeToSwitch);
  EXPECT_EQ(first.from.index, src);
  EXPECT_EQ(last.kind, ChannelKind::kSwitchToNode);
  EXPECT_EQ(last.to.index, dst);
  bool descending = false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const ChannelInfo& cur = t.Channel(path[i]);
    const ChannelInfo& nxt = t.Channel(path[i + 1]);
    EXPECT_EQ(cur.to, nxt.from) << "discontinuity at hop " << i;
    if (nxt.kind == ChannelKind::kSwitchDown ||
        nxt.kind == ChannelKind::kSwitchToNode) {
      descending = true;
    } else {
      EXPECT_FALSE(descending) << "route ascends after descending (not "
                                  "up*/down*) at hop "
                               << i;
    }
  }
  // Peak level must be the NCA level.
  int peak = 0;
  for (auto c : path) peak = std::max(peak, t.Channel(c).to.level);
  EXPECT_EQ(peak, h);
}

TEST_P(TreeTest, RoutesAreValidUpDownPaths) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  const std::int64_t stride = std::max<std::int64_t>(1, t.num_nodes() / 23);
  for (std::int64_t a = 0; a < t.num_nodes(); a += stride) {
    for (std::int64_t b = 0; b < t.num_nodes(); b += stride) {
      if (a != b) CheckRoute(t, a, b);
    }
  }
}

TEST_P(TreeTest, EntropyRoutesAreValidAndZeroEntropyMatchesDefault) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  const std::int64_t a = 1 % t.num_nodes();
  const std::int64_t b = t.num_nodes() - 1;
  EXPECT_EQ(t.Route(a, b, 0), t.Route(a, b));
  std::uint64_t entropy = 0x9e3779b97f4a7c15ULL;
  for (int trial = 0; trial < 8; ++trial) {
    entropy = entropy * 6364136223846793005ULL + 1;
    const auto path = t.Route(a, b, entropy);
    ASSERT_EQ(path.size(), t.Route(a, b).size());
    // Contiguous, starts/ends correctly, up then down.
    EXPECT_EQ(t.Channel(path.front()).from.index, a);
    EXPECT_EQ(t.Channel(path.back()).to.index, b);
    bool descending = false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_EQ(t.Channel(path[i]).to, t.Channel(path[i + 1]).from);
      const auto kind = t.Channel(path[i + 1]).kind;
      if (kind == ChannelKind::kSwitchDown ||
          kind == ChannelKind::kSwitchToNode) {
        descending = true;
      } else {
        EXPECT_FALSE(descending);
      }
    }
  }
}

TEST_P(TreeTest, EntropyDiversifiesAscentChannels) {
  const auto [m, n] = GetParam();
  if (n < 3) GTEST_SKIP() << "needs a multi-level ascent";
  MPortNTree t(m, n);
  const std::int64_t a = 0, b = t.num_nodes() - 1;
  std::set<std::int64_t> second_hops;
  for (std::uint64_t e = 0; e < 16; ++e) {
    second_hops.insert(t.Route(a, b, e)[1]);
  }
  EXPECT_GT(second_hops.size(), 1u);
}

TEST_P(TreeTest, RouteIsDeterministic) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  const std::int64_t a = 0, b = t.num_nodes() - 1;
  EXPECT_EQ(t.Route(a, b), t.Route(a, b));
}

TEST_P(TreeTest, RouteToSelfIsEmpty) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  EXPECT_TRUE(t.Route(3 % t.num_nodes(), 3 % t.num_nodes()).empty());
}

TEST_P(TreeTest, SpineAscentValidAndMeetsDescent) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  const std::int64_t anchor = 0;
  const std::int64_t stride = std::max<std::int64_t>(1, t.num_nodes() / 29);
  for (std::int64_t src = 0; src < t.num_nodes(); src += stride) {
    const auto up = t.AscendToSpine(src, anchor);
    const int nca = t.NcaLevel(src, anchor);
    const int r = nca == 0 ? 1 : nca;
    ASSERT_EQ(up.size(), static_cast<std::size_t>(r));
    EXPECT_EQ(t.Channel(up.front()).kind, ChannelKind::kNodeToSwitch);
    EXPECT_EQ(t.Channel(up.front()).from.index, src);
    for (std::size_t i = 0; i + 1 < up.size(); ++i) {
      EXPECT_EQ(t.Channel(up[i]).to, t.Channel(up[i + 1]).from);
      EXPECT_EQ(t.Channel(up[i + 1]).kind, ChannelKind::kSwitchUp);
    }
    // The exit switch of the ascent must be exactly where the descent to the
    // same node re-enters the tree (both are the level-r spine switch).
    const auto down = t.DescendFromSpine(src, anchor);
    ASSERT_EQ(down.size(), static_cast<std::size_t>(r));
    EXPECT_EQ(t.Channel(up.back()).to, t.Channel(down.front()).from);
    EXPECT_EQ(t.Channel(down.back()).kind, ChannelKind::kSwitchToNode);
    EXPECT_EQ(t.Channel(down.back()).to.index, src);
    for (std::size_t i = 0; i + 1 < down.size(); ++i) {
      EXPECT_EQ(t.Channel(down[i]).to, t.Channel(down[i + 1]).from);
    }
  }
}

TEST_P(TreeTest, AllPairsRoutingLoadIsPerfectlyBalanced) {
  const auto [m, n] = GetParam();
  MPortNTree t(m, n);
  if (t.num_nodes() > 64) GTEST_SKIP() << "exhaustive all-pairs too large";
  std::vector<std::int64_t> load(static_cast<std::size_t>(t.num_channels()), 0);
  for (std::int64_t a = 0; a < t.num_nodes(); ++a) {
    for (std::int64_t b = 0; b < t.num_nodes(); ++b) {
      if (a == b) continue;
      for (auto c : t.Route(a, b)) ++load[static_cast<std::size_t>(c)];
    }
  }
  // Group loads by (kind, from-level); destination-digit routing must spread
  // all-pairs traffic exactly evenly within each group.
  std::map<std::pair<int, int>, std::pair<std::int64_t, std::int64_t>> minmax;
  for (std::int64_t c = 0; c < t.num_channels(); ++c) {
    const auto& info = t.Channel(c);
    const auto key = std::make_pair(static_cast<int>(info.kind),
                                    info.from.level);
    const auto l = load[static_cast<std::size_t>(c)];
    auto it = minmax.find(key);
    if (it == minmax.end()) {
      minmax[key] = {l, l};
    } else {
      it->second.first = std::min(it->second.first, l);
      it->second.second = std::max(it->second.second, l);
    }
  }
  for (const auto& [key, mm] : minmax) {
    EXPECT_EQ(mm.first, mm.second)
        << "unbalanced load for kind=" << key.first << " level=" << key.second;
  }
  // Node injection/ejection channels each carry exactly N-1 messages.
  for (std::int64_t node = 0; node < t.num_nodes(); ++node) {
    EXPECT_EQ(load[static_cast<std::size_t>(t.NodeUpChannel(node))],
              t.num_nodes() - 1);
    EXPECT_EQ(load[static_cast<std::size_t>(t.NodeDownChannel(node))],
              t.num_nodes() - 1);
  }
}

TEST(TreeValidation, RejectsBadParameters) {
  EXPECT_THROW(MPortNTree(3, 2), std::invalid_argument);
  EXPECT_THROW(MPortNTree(2, 2), std::invalid_argument);
  EXPECT_THROW(MPortNTree(4, 0), std::invalid_argument);
  EXPECT_THROW(MPortNTree(5, 1), std::invalid_argument);
}

TEST(TreeValidation, SingleLevelTreeIsOneSwitch) {
  MPortNTree t(8, 1);
  EXPECT_EQ(t.num_nodes(), 8);
  EXPECT_EQ(t.num_switches(), 1);
  // Every distinct pair routes node -> root -> node.
  const auto path = t.Route(0, 7);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(t.Channel(path[0]).kind, ChannelKind::kNodeToSwitch);
  EXPECT_EQ(t.Channel(path[1]).kind, ChannelKind::kSwitchToNode);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TreeTest,
    ::testing::Values(TreeCase{4, 1}, TreeCase{4, 2}, TreeCase{4, 3},
                      TreeCase{4, 4}, TreeCase{4, 5}, TreeCase{6, 2},
                      TreeCase{6, 3}, TreeCase{8, 1}, TreeCase{8, 2},
                      TreeCase{8, 3}, TreeCase{10, 2}, TreeCase{12, 2}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace coc
