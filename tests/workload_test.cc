// Tests for the unified Workload layer: the golden pin that the default
// (uniform) workload reproduces the seed model bit for bit, the message-
// length distribution's moments and sampling, the traffic generator's
// per-cluster thinning, model-vs-sim agreement for the workloads the model
// could not express before the layer existed (cluster-local, heterogeneous
// per-cluster rates, hot-spot, bimodal lengths), and the workload.* config
// keys with their did-you-mean rejection.
#include <cmath>
#include <string>
#include <vector>

#include "cli/config_parser.h"
#include "gtest/gtest.h"
#include "model/latency_model.h"
#include "sim/coc_system_sim.h"
#include "sim/traffic.h"
#include "system/presets.h"
#include "workload/workload.h"

namespace coc {
namespace {

// ---------------------------------------------------------------------------
// Golden pin: the default Workload IS the paper's assumption 2.

TEST(WorkloadGolden, UniformWorkloadReproducesSeedModelBitForBit) {
  // The explicit uniform workload — even spelled with a unit rate table and
  // an explicit fixed length — must evaluate to the exact doubles of the
  // pre-workload-layer model at the golden operating points (the same rates
  // golden_equivalence_test pins against the seed snapshot).
  for (auto* make : {&MakeSystem1120, &MakeSystem544}) {
    const auto sys = (*make)(MessageFormat{32, 256});
    LatencyModel seed_path(sys);  // default-workload constructor
    Workload explicit_uniform = Workload::Uniform();
    explicit_uniform
        .WithRateScale(std::vector<double>(
            static_cast<std::size_t>(sys.num_clusters()), 1.0))
        .WithMessageLength(MessageLength::Fixed());
    LatencyModel workload_path(sys, explicit_uniform);
    for (double rate : {5e-5, 1e-4, 2e-4, 3e-4, 4e-4, 4.5e-4, 6e-4}) {
      const auto a = seed_path.Evaluate(rate);
      const auto b = workload_path.Evaluate(rate);
      EXPECT_EQ(a.mean_latency, b.mean_latency) << "rate=" << rate;
      EXPECT_EQ(a.saturated, b.saturated);
      ASSERT_EQ(a.clusters.size(), b.clusters.size());
      for (std::size_t i = 0; i < a.clusters.size(); ++i) {
        EXPECT_EQ(a.clusters[i].u, b.clusters[i].u);
        EXPECT_EQ(a.clusters[i].blended, b.clusters[i].blended);
      }
    }
    EXPECT_EQ(seed_path.SaturationRate(2e-3),
              workload_path.SaturationRate(2e-3));
  }
}

TEST(WorkloadGolden, UniformEffectiveUIsEq2BitForBit) {
  for (auto* make : {&MakeSystem1120, &MakeSystem544}) {
    const auto sys = (*make)(MessageFormat{32, 256});
    const Workload uniform;
    const Workload perm = Workload::Permutation();
    for (int i = 0; i < sys.num_clusters(); ++i) {
      EXPECT_EQ(uniform.EffectiveU(sys, i), sys.OutgoingProbability(i));
      EXPECT_EQ(perm.EffectiveU(sys, i), sys.OutgoingProbability(i));
    }
  }
}

TEST(WorkloadGolden, UniformTrafficIsSeedStream) {
  // The default workload must not perturb a single RNG draw: sampled flit
  // counts equal the MessageFormat's M and the (time, src, dst) stream is
  // the seed generator's (spot-pinned through statistical identity with the
  // per-cluster thinning disabled; sim_golden_test pins the full delivery
  // schedule bit for bit on top of this).
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  SimConfig cfg;
  cfg.lambda_g = 1e-3;
  cfg.seed = 7;
  const auto events = GenerateTraffic(sys, cfg, 5000);
  for (const auto& e : events) {
    EXPECT_EQ(e.flits, 16);
    EXPECT_NE(e.src, e.dst);
  }
}

// ---------------------------------------------------------------------------
// Message-length distribution.

TEST(MessageLength, FixedMomentsAreExact) {
  const MessageLength fixed;
  EXPECT_TRUE(fixed.is_fixed());
  EXPECT_EQ(fixed.MeanFlits(32), 32.0);
  EXPECT_EQ(fixed.SecondMomentFlits(32), 1024.0);
  EXPECT_EQ(fixed.VarianceFlits(32), 0.0);
  Rng rng(1);
  EXPECT_EQ(fixed.SampleFlits(32, rng), 32);
}

TEST(MessageLength, BimodalMomentsMatchClosedForm) {
  const auto len = MessageLength::Bimodal(8, 64, 0.25);
  const double mean = 0.75 * 8 + 0.25 * 64;
  const double m2 = 0.75 * 64 + 0.25 * 4096;
  EXPECT_DOUBLE_EQ(len.MeanFlits(32), mean);
  EXPECT_DOUBLE_EQ(len.SecondMomentFlits(32), m2);
  EXPECT_DOUBLE_EQ(len.VarianceFlits(32), m2 - mean * mean);
  // Sampling converges on the mixture.
  Rng rng(11);
  double sum = 0;
  int longs = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const int f = len.SampleFlits(32, rng);
    EXPECT_TRUE(f == 8 || f == 64);
    sum += f;
    longs += (f == 64);
  }
  EXPECT_NEAR(sum / trials, mean, 0.3);
  EXPECT_NEAR(static_cast<double>(longs) / trials, 0.25, 0.01);
}

TEST(MessageLength, ParseRoundTripsAndRejects) {
  EXPECT_EQ(MessageLength::Parse("fixed"), MessageLength::Fixed());
  const auto bi = MessageLength::Parse("bimodal:8,64,0.1");
  EXPECT_EQ(bi, MessageLength::Bimodal(8, 64, 0.1));
  EXPECT_EQ(MessageLength::Parse(bi.ToString()), bi);
  EXPECT_THROW(MessageLength::Parse("gaussian:3"), std::invalid_argument);
  EXPECT_THROW(MessageLength::Parse("bimodal:8,64"), std::invalid_argument);
  EXPECT_THROW(MessageLength::Parse("bimodal:0,64,0.1"),
               std::invalid_argument);
  EXPECT_THROW(MessageLength::Parse("bimodal:8,64,1.5"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Workload accessors and validation.

TEST(Workload, HotspotEffectiveUAddsTheHotShare) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  const Workload wl = Workload::Hotspot(0.3, /*hot_node=*/0);  // cluster 0
  const double base1 = sys.OutgoingProbability(1);
  EXPECT_DOUBLE_EQ(wl.EffectiveU(sys, 1), 0.3 + 0.7 * base1);
  const double base0 = sys.OutgoingProbability(0);
  EXPECT_DOUBLE_EQ(wl.EffectiveU(sys, 0), 0.7 * base0);
}

TEST(Workload, HotspotInterDestProbabilitiesConcentrateAndNormalize) {
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  const Workload wl = Workload::Hotspot(0.4, /*hot_node=*/0);
  const int h = sys.ClusterOfNode(0);
  for (int i = 0; i < sys.num_clusters(); ++i) {
    double sum = 0;
    double max_w = 0;
    int argmax = -1;
    for (int j = 0; j < sys.num_clusters(); ++j) {
      const double w = wl.InterDestProbability(sys, i, j);
      if (i == j) {
        EXPECT_EQ(w, 0.0);
        continue;
      }  // (braces keep -Wdangling-else quiet)
      sum += w;
      if (w > max_w) {
        max_w = w;
        argmax = j;
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "i=" << i;
    if (i != h) {
      EXPECT_EQ(argmax, h) << "i=" << i;
    }
  }
}

TEST(Workload, ValidationRejectsBadInput) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  Workload bad_size;
  bad_size.rate_scale = {1.0, 2.0};  // 4 clusters
  EXPECT_THROW(bad_size.Validate(sys), std::invalid_argument);
  Workload bad_rate;
  bad_rate.rate_scale = {1.0, -1.0, 1.0, 1.0};
  EXPECT_THROW(bad_rate.Validate(sys), std::invalid_argument);
  Workload bad_node = Workload::Hotspot(0.1, sys.TotalNodes());
  EXPECT_THROW(bad_node.Validate(sys), std::invalid_argument);
  Workload all_zero;
  all_zero.rate_scale = {0, 0, 0, 0};
  EXPECT_THROW(all_zero.Validate(sys), std::invalid_argument);
  EXPECT_THROW(LatencyModel(sys, bad_node), std::invalid_argument);
}

TEST(Workload, PatternNamesRoundTrip) {
  for (const auto p :
       {WorkloadPattern::kUniform, WorkloadPattern::kHotspot,
        WorkloadPattern::kClusterLocal, WorkloadPattern::kPermutation}) {
    EXPECT_EQ(ParseWorkloadPattern(WorkloadPatternName(p)), p);
  }
  EXPECT_EQ(ParseWorkloadPattern("cluster-local"),
            WorkloadPattern::kClusterLocal);
  EXPECT_THROW(ParseWorkloadPattern("zipf"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Traffic generator under non-default workloads.

TEST(WorkloadTraffic, HeterogeneousRatesThinTheSuperposition) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});  // 4 x 8 nodes
  SimConfig cfg;
  cfg.lambda_g = 1e-3;
  cfg.seed = 29;
  cfg.workload.rate_scale = {4.0, 2.0, 1.0, 1.0};
  const std::int64_t count = 80000;
  const auto events = GenerateTraffic(sys, cfg, count);
  std::vector<int> per_cluster(4, 0);
  for (const auto& e : events) {
    ++per_cluster[static_cast<std::size_t>(sys.ClusterOfNode(e.src))];
  }
  // Source shares proportional to N_c s_c = 8 * {4, 2, 1, 1}.
  const double total_w = 8.0 * (4 + 2 + 1 + 1);
  for (int c = 0; c < 4; ++c) {
    const double expect = count * 8.0 * cfg.workload.rate_scale
        [static_cast<std::size_t>(c)] / total_w;
    EXPECT_NEAR(per_cluster[static_cast<std::size_t>(c)], expect,
                6 * std::sqrt(expect))
        << "cluster " << c;
  }
  // The superposed rate covers all clusters: mean gap = 1 / (lambda_g total).
  const double expected_gap = 1.0 / (cfg.lambda_g * total_w);
  EXPECT_NEAR(events.back().time / static_cast<double>(count), expected_gap,
              0.05 * expected_gap);
}

TEST(WorkloadTraffic, BimodalLengthsAreSampledPerMessage) {
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  SimConfig cfg;
  cfg.lambda_g = 1e-3;
  cfg.seed = 31;
  cfg.workload.message_length = MessageLength::Bimodal(4, 32, 0.2);
  const auto events = GenerateTraffic(sys, cfg, 20000);
  int longs = 0;
  for (const auto& e : events) {
    ASSERT_TRUE(e.flits == 4 || e.flits == 32);
    longs += (e.flits == 32);
  }
  EXPECT_NEAR(longs / 20000.0, 0.2, 0.02);
}

// ---------------------------------------------------------------------------
// Model-vs-sim agreement for the workloads the model gained (mirrors the
// uniform light-load integration test).

struct AgreementCase {
  const char* name;
  Workload workload;
  double rate;
  double tolerance_pct;
};

class WorkloadAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(WorkloadAgreement, ModelWithinToleranceOfSimulation) {
  const auto& c = GetParam();
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  LatencyModel model(sys, c.workload);
  CocSystemSim sim(sys);
  SimConfig cfg;
  cfg.lambda_g = c.rate;
  cfg.workload = c.workload;
  cfg.warmup_messages = 1000;
  cfg.measured_messages = 10000;
  cfg.drain_messages = 1000;
  const auto sr = sim.Run(cfg);
  const auto mr = model.Evaluate(c.rate);
  ASSERT_FALSE(mr.saturated) << "model saturated at the test rate";
  const double err =
      100.0 * std::fabs(mr.mean_latency - sr.latency.Mean()) /
      sr.latency.Mean();
  EXPECT_LT(err, c.tolerance_pct)
      << "analysis=" << mr.mean_latency << " sim=" << sr.latency.Mean();
}

Workload HeterogeneousRates() {
  Workload wl;
  wl.rate_scale = {2.0, 1.5, 1.0, 0.5};
  return wl;
}

Workload LocalHeterogeneous() {
  Workload wl = Workload::ClusterLocal(0.8);
  wl.rate_scale = {2.0, 1.0, 1.0, 0.5};
  return wl;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, WorkloadAgreement,
    ::testing::Values(
        AgreementCase{"ClusterLocal80", Workload::ClusterLocal(0.8), 5e-4,
                      12},
        AgreementCase{"HeterogeneousRates", HeterogeneousRates(), 2e-4, 12},
        AgreementCase{"LocalTimesHeterogeneous", LocalHeterogeneous(), 4e-4,
                      12},
        AgreementCase{"Hotspot15", Workload::Hotspot(0.15, 0), 1e-4, 20},
        AgreementCase{"BimodalLengths",
                      Workload().WithMessageLength(
                          MessageLength::Bimodal(8, 32, 0.25)),
                      1e-4, 15},
        // Pins the tolerance under which the permutation pattern's
        // uniform-marginal approximation holds (the model routes Eq. 2
        // while the sim replays the actual fixed derangement; see
        // Workload::ModelApproximationNote). The fixed pairing removes the
        // destination mixing the M/G/1 equations assume, so the band is
        // the widest of the family.
        AgreementCase{"PermutationMarginal", Workload::Permutation(), 2e-4,
                      20}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return info.param.name;
    });

TEST(WorkloadModel, OnlyPermutationCarriesAnApproximationNote) {
  EXPECT_EQ(Workload::Uniform().ModelApproximationNote(), nullptr);
  EXPECT_EQ(Workload::ClusterLocal(0.5).ModelApproximationNote(), nullptr);
  EXPECT_EQ(Workload::Hotspot(0.1).ModelApproximationNote(), nullptr);
  const char* note = Workload::Permutation().ModelApproximationNote();
  ASSERT_NE(note, nullptr);
  EXPECT_NE(std::string(note).find("uniform destination marginal"),
            std::string::npos);
}

TEST(WorkloadModel, HotspotPredictsEarlierSaturationThanUniform) {
  // The hot node's ejection link binds far below the uniform C/D point —
  // the failure mode the pre-workload model could not see at all.
  const auto sys = MakeSmallSystem(MessageFormat{16, 64});
  LatencyModel uniform(sys);
  LatencyModel hot(sys, Workload::Hotspot(0.3, 0));
  const double sat_uniform = uniform.SaturationRate(1e-1);
  const double sat_hot = hot.SaturationRate(1e-1);
  EXPECT_LT(sat_hot, sat_uniform);
  const auto report = hot.Bottleneck(sat_hot * 0.99);
  EXPECT_STREQ(report.binding, "hot-node ejection link");
}

TEST(WorkloadModel, RateScaleShiftsLoadBetweenClusters) {
  // Scaling one cluster up must raise its source utilization and the system
  // mean latency relative to the homogeneous baseline at the same dial.
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  Workload skewed;
  skewed.rate_scale = {3.0, 1.0, 1.0, 1.0};
  LatencyModel base(sys), hot(sys, skewed);
  const double rate = 5e-4;
  const auto rb = base.Evaluate(rate);
  const auto rh = hot.Evaluate(rate);
  EXPECT_GT(rh.mean_latency, rb.mean_latency);
  // The scaled cluster saturates first: its saturation dial is lower.
  EXPECT_LT(hot.SaturationRate(1e-1), base.SaturationRate(1e-1));
}

TEST(WorkloadModel, BimodalLengthsRaiseWaitingOverFixedSameMean) {
  // Equal mean, higher second moment => strictly more M/G/1 waiting.
  const auto sys = MakeTinySystem(MessageFormat{16, 64});
  LatencyModel fixed(sys);
  Workload bimodal;  // mean 0.5*4 + 0.5*28 = 16 = the fixed length
  bimodal.message_length = MessageLength::Bimodal(4, 28, 0.5);
  LatencyModel spread(sys, bimodal);
  const double rate = 8e-4;
  EXPECT_GT(spread.Evaluate(rate).mean_latency,
            fixed.Evaluate(rate).mean_latency);
}

// ---------------------------------------------------------------------------
// Config-file workload keys (the parser satellite).

constexpr const char* kBaseConfig = R"(
[system]
m = 4
icn2 = fast
message_flits = 16
flit_bytes = 64
%EXTRA%

[network fast]
bandwidth = 500
network_latency = 0.01
switch_latency = 0.02

[clusters]
count = 4
n = 1
icn1 = fast
ecn1 = fast
)";

std::string WithKeys(const std::string& extra) {
  std::string text = kBaseConfig;
  const auto pos = text.find("%EXTRA%");
  return text.replace(pos, 7, extra);
}

TEST(ConfigWorkload, ParsesAllWorkloadKeys) {
  const auto exp = ParseExperiment(WithKeys(
      "workload.pattern = hotspot\nworkload.hotspot_fraction = 0.2\n"
      "workload.hotspot_node = 3\nworkload.rate.0 = 2.5\n"
      "workload.rate.2 = 0.5\nworkload.msg_len = bimodal:4,32,0.1\n"));
  EXPECT_EQ(exp.workload.pattern, WorkloadPattern::kHotspot);
  EXPECT_DOUBLE_EQ(exp.workload.hotspot_fraction, 0.2);
  EXPECT_EQ(exp.workload.hotspot_node, 3);
  ASSERT_EQ(exp.workload.rate_scale.size(), 4u);
  EXPECT_DOUBLE_EQ(exp.workload.rate_scale[0], 2.5);
  EXPECT_DOUBLE_EQ(exp.workload.rate_scale[1], 1.0);
  EXPECT_DOUBLE_EQ(exp.workload.rate_scale[2], 0.5);
  EXPECT_EQ(exp.workload.message_length, MessageLength::Bimodal(4, 32, 0.1));
}

TEST(ConfigWorkload, DefaultIsUniform) {
  const auto exp = ParseExperiment(WithKeys(""));
  EXPECT_EQ(exp.workload, Workload::Uniform());
}

TEST(ConfigWorkload, LocalityKeyParses) {
  const auto exp = ParseExperiment(
      WithKeys("workload.pattern = local\nworkload.locality = 0.9\n"));
  EXPECT_EQ(exp.workload.pattern, WorkloadPattern::kClusterLocal);
  EXPECT_DOUBLE_EQ(exp.workload.locality_fraction, 0.9);
}

struct BadKeyCase {
  const char* name;
  const char* keys;
  const char* expect;  // substring of the error
};

class ConfigWorkloadErrors : public ::testing::TestWithParam<BadKeyCase> {};

TEST_P(ConfigWorkloadErrors, RejectedWithDiagnostic) {
  try {
    ParseExperiment(WithKeys(GetParam().keys));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().expect),
              std::string::npos)
        << "actual: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigWorkloadErrors,
    ::testing::Values(
        BadKeyCase{"TypoPattern", "workload.patern = hotspot\n",
                   "did you mean 'workload.pattern'"},
        BadKeyCase{"TypoLocality", "workload.locallity = 0.5\n",
                   "did you mean 'workload.locality'"},
        BadKeyCase{"TypoRate", "workload.rates.0 = 2\n",
                   "did you mean 'workload.rate.<cluster>'"},
        BadKeyCase{"RateIndexOutOfRange", "workload.rate.9 = 2\n",
                   "out of range"},
        BadKeyCase{"RateIndexNotANumber", "workload.rate.first = 2\n",
                   "did you mean"},
        BadKeyCase{"BadPatternName", "workload.pattern = zipf\n",
                   "unknown workload pattern"},
        BadKeyCase{"BadMsgLen", "workload.msg_len = gaussian\n",
                   "message length spec"},
        BadKeyCase{"HotspotNodeOutOfRange",
                   "workload.pattern = hotspot\nworkload.hotspot_node = "
                   "999\n",
                   "outside [0, N)"},
        // System-dependent validation failures must carry the config
        // location (the [system] section's line), not surface bare from
        // Workload::Validate deep inside the model.
        BadKeyCase{"HotspotNodeOutOfRangeNamesTheConfigLine",
                   "workload.pattern = hotspot\nworkload.hotspot_node = "
                   "999\n",
                   "config line"}),
    [](const ::testing::TestParamInfo<BadKeyCase>& info) {
      return info.param.name;
    });

TEST(ConfigWorkload, CliFlagsOverrideFileWorkload) {
  // End-to-end through the CLI: the model command accepts the workload flags
  // and produces different output when the workload changes.
  // (The CLI layer is exercised in cli_test.cc; here we pin the parser's
  // Experiment round trip instead.)
  const auto exp = ParseExperiment(WithKeys("workload.pattern = local\n"));
  LatencyModel model(exp.system, exp.workload);
  EXPECT_EQ(model.workload().pattern, WorkloadPattern::kClusterLocal);
}

}  // namespace
}  // namespace coc
