// coc_cli — command-line front end for the cluster-of-clusters network
// model and simulator. See src/cli/cli.h for the command reference.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return coc::RunCli(args, std::cout, std::cerr);
}
