// Perf-trajectory reporter: runs the google-benchmark perf suites
// (bench_perf_sim, bench_perf_model) plus the validation benches
// (bench_ablation_workload, bench_ablation_dragonfly) and emits the tracked
// artifacts BENCH_sim.json / BENCH_model.json / BENCH_workload.json /
// BENCH_dragonfly.json (google-benchmark's JSON schema: a "context" block
// plus a "benchmarks" array with per-benchmark "name",
// "real_time"/"cpu_time" in ns, and user counters such as "msgs/s").
// Prints a compact summary, and — given a baseline artifact — the msgs/s
// speedup against it, so CI and PRs can quote before/after numbers from one
// command. Also writes PERF_summary.json, a machine-readable digest of all
// suites (current numbers plus baseline deltas) produced by the shared
// common/json emitter — the same serializer the Engine's reports use, so
// there is exactly one JSON writer in the tree.
//
// Usage:
//   perf_report [--bench-dir DIR] [--out-dir DIR] [--baseline FILE]
//               [--model-baseline FILE] [--workload-baseline FILE]
//               [--dragonfly-baseline FILE] [--server-baseline FILE]
//               [--min-time SECONDS] [--check] [--check-threshold FACTOR]
//
//   --bench-dir        directory holding bench_perf_sim / bench_perf_model
//                      (default: ".")
//   --out-dir          where the BENCH_*.json artifacts and PERF_summary.json
//                      are written (default: ".")
//   --baseline         a previous BENCH_sim.json
//                      (e.g. perf/BENCH_sim.baseline.json) to compare
//                      msgs/s and ns/op against
//   --model-baseline   same for the model suite (BENCH_model.json)
//   --workload-baseline same for the workload validation suite
//                      (BENCH_workload.json; compares model-vs-sim err%)
//   --dragonfly-baseline same for the dragonfly validation suite
//                      (BENCH_dragonfly.json; compares model-vs-sim err%)
//   --server-baseline  same for the evaluation-server suite
//                      (BENCH_server.json; cached vs uncached request
//                      latency through the line protocol)
//   --min-time         per-benchmark measuring time (default 1 second)
//   --check            exit non-zero when any benchmark regresses past the
//                      threshold against its baseline (throughput metrics:
//                      current < baseline / FACTOR; time metrics: current >
//                      baseline * FACTOR). Validation entries (err%) carry
//                      no perf signal and are never checked. Also gates the
//                      dial-move rebind speedup (BM_WorkloadDialMoveCold /
//                      BM_WorkloadDialMoveRebind, both from the current
//                      run, so machine speed cancels) at 5x.
//   --check-threshold  regression factor for --check (default 1.75 — wide
//                      enough for shared-runner noise, tight enough to catch
//                      a lost optimization)
//
// Exit code: 0 on success, 1 when a bench binary is missing or fails, 2 when
// --check found a regression.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

using coc::Json;

struct BenchResult {
  double real_time_ns = 0;
  double msgs_per_s = 0;  // 0 when the benchmark has no msgs/s counter
  double model_us = 0;    // workload suite: analytical mean latency
  double sim_us = 0;      // workload suite: simulated mean latency
  bool model_saturated = false;  // workload suite: model is past saturation
  /// Model suite: cold-compile time / rebind time for one workload-dial
  /// move, both measured interleaved within the same benchmark so machine
  /// noise cancels out of the ratio. 0 when the entry has no such counter.
  double rebind_speedup = 0;

  /// Workload-suite entries carry a model-vs-sim validation error instead of
  /// a throughput; that error is what baselines compare.
  bool HasErrPct() const { return sim_us > 0 && !model_saturated; }
  double ErrPct() const { return 100.0 * (model_us - sim_us) / sim_us; }
};

/// Reads a google-benchmark JSON artifact through the shared parser and
/// extracts the fields the trajectory tracks ("name", "real_time", and the
/// user counters). Unparseable or structurally alien files yield an empty
/// map, which the caller reports.
std::map<std::string, BenchResult> ParseBenchJson(const std::string& path) {
  std::map<std::string, BenchResult> results;
  std::ifstream in(path);
  if (!in) return results;
  std::ostringstream buf;
  buf << in.rdbuf();
  Json doc;
  try {
    doc = Json::Parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s: %s\n", path.c_str(), e.what());
    return results;
  }
  const Json* benchmarks = doc.Find("benchmarks");
  if (benchmarks == nullptr || benchmarks->kind() != Json::Kind::kArray) {
    return results;
  }
  const auto number = [](const Json& entry, const char* key, double fallback) {
    const Json* v = entry.Find(key);
    return v != nullptr ? v->AsDouble() : fallback;
  };
  for (std::size_t i = 0; i < benchmarks->Size(); ++i) {
    const Json& entry = benchmarks->At(i);
    const Json* name = entry.Find("name");
    if (name == nullptr) continue;
    BenchResult& r = results[name->AsString()];
    r.real_time_ns = number(entry, "real_time", 0);
    r.msgs_per_s = number(entry, "msgs/s", 0);
    r.model_us = number(entry, "model_us", 0);
    r.sim_us = number(entry, "sim_us", 0);
    r.model_saturated = number(entry, "model_saturated", 0) != 0.0;
    r.rebind_speedup = number(entry, "rebind_speedup", 0);
  }
  return results;
}

int RunSuite(const std::string& bench_dir, const std::string& binary,
             const std::string& out_path, double min_time) {
  std::ostringstream cmd;
  // Suppress the console table (the JSON artifact is the output of record)
  // but let the bench's stderr through for diagnosability.
  cmd << bench_dir << "/" << binary << " --benchmark_out_format=json"
      << " --benchmark_out=" << out_path << " --benchmark_min_time=" << min_time
      << " > /dev/null";
  const int status = std::system(cmd.str().c_str());
  if (status == 0) return 0;
#if defined(WIFEXITED) && defined(WEXITSTATUS)
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : status;
#else
  const int code = status;
#endif
  std::fprintf(stderr, "error: '%s/%s' failed (exit %d)\n", bench_dir.c_str(),
               binary.c_str(), code);
  return code != 0 ? code : 1;
}

void PrintSuite(const char* title, const std::string& path,
                const std::map<std::string, BenchResult>& results) {
  std::printf("\n%s -> %s\n", title, path.c_str());
  for (const auto& [name, r] : results) {
    if (r.msgs_per_s > 0) {
      std::printf("  %-36s %12.0f ns/op  %10.1f k msgs/s\n", name.c_str(),
                  r.real_time_ns, r.msgs_per_s / 1000.0);
    } else if (r.HasErrPct()) {
      std::printf("  %-36s model %8.1f us  sim %8.1f us  (%+.1f%%)\n",
                  name.c_str(), r.model_us, r.sim_us, r.ErrPct());
    } else if (r.sim_us > 0) {
      std::printf("  %-36s model saturated  sim %8.1f us\n", name.c_str(),
                  r.sim_us);
    } else if (r.model_saturated) {
      std::printf("  %-36s model saturated  sim aborted\n", name.c_str());
    } else {
      std::printf("  %-36s %12.0f ns/op\n", name.c_str(), r.real_time_ns);
    }
  }
}

void CompareToBaseline(const std::string& baseline_path,
                       const std::map<std::string, BenchResult>& base,
                       const std::map<std::string, BenchResult>& current) {
  std::printf("\nvs baseline %s\n", baseline_path.c_str());
  for (const auto& [name, r] : current) {
    const auto it = base.find(name);
    if (it == base.end()) continue;
    if (r.sim_us > 0 || it->second.sim_us > 0 || r.model_saturated ||
        it->second.model_saturated) {
      // Workload validation entries: compare the model-vs-sim error, the
      // metric the artifact exists for (wall time is sweep noise).
      if (r.HasErrPct() && it->second.HasErrPct()) {
        std::printf("  %-36s err %+6.1f%% -> %+6.1f%%\n", name.c_str(),
                    it->second.ErrPct(), r.ErrPct());
      } else if (r.model_saturated != it->second.model_saturated) {
        std::printf("  %-36s model saturation changed: %s -> %s\n",
                    name.c_str(),
                    it->second.model_saturated ? "saturated" : "finite",
                    r.model_saturated ? "saturated" : "finite");
      }
      continue;
    }
    if (r.msgs_per_s > 0 && it->second.msgs_per_s > 0) {
      std::printf("  %-36s %10.1f -> %10.1f k msgs/s  (%.2fx)\n", name.c_str(),
                  it->second.msgs_per_s / 1000.0, r.msgs_per_s / 1000.0,
                  r.msgs_per_s / it->second.msgs_per_s);
    } else if (it->second.real_time_ns > 0 && r.real_time_ns > 0) {
      std::printf("  %-36s %10.0f -> %10.0f ns/op     (%.2fx)\n", name.c_str(),
                  it->second.real_time_ns, r.real_time_ns,
                  it->second.real_time_ns / r.real_time_ns);
    }
  }
}

/// Regression gate for --check: compares every benchmark present in both the
/// current run and the baseline, preferring the throughput counter (msgs/s,
/// fails when it drops below baseline / threshold) and falling back to wall
/// time (fails when it exceeds baseline * threshold). Validation entries
/// (model-vs-sim error) are skipped — their wall time is sweep noise.
/// Returns the number of regressions, printing one line per failure.
int CheckAgainstBaseline(const char* title,
                         const std::map<std::string, BenchResult>& base,
                         const std::map<std::string, BenchResult>& current,
                         double threshold) {
  int regressions = 0;
  for (const auto& [name, r] : current) {
    const auto it = base.find(name);
    if (it == base.end()) continue;
    const BenchResult& b = it->second;
    if (r.sim_us > 0 || b.sim_us > 0 || r.model_saturated ||
        b.model_saturated) {
      continue;
    }
    if (r.msgs_per_s > 0 && b.msgs_per_s > 0) {
      if (r.msgs_per_s * threshold < b.msgs_per_s) {
        std::fprintf(stderr,
                     "check FAILED: %s / %s: %.1f k msgs/s vs baseline %.1f "
                     "(%.2fx slower, threshold %.2fx)\n",
                     title, name.c_str(), r.msgs_per_s / 1000.0,
                     b.msgs_per_s / 1000.0, b.msgs_per_s / r.msgs_per_s,
                     threshold);
        ++regressions;
      }
    } else if (r.real_time_ns > 0 && b.real_time_ns > 0) {
      if (r.real_time_ns > b.real_time_ns * threshold) {
        std::fprintf(stderr,
                     "check FAILED: %s / %s: %.0f ns/op vs baseline %.0f "
                     "(%.2fx slower, threshold %.2fx)\n",
                     title, name.c_str(), r.real_time_ns, b.real_time_ns,
                     r.real_time_ns / b.real_time_ns, threshold);
        ++regressions;
      }
    }
  }
  return regressions;
}

/// Absolute gate for --check: the single-dial-move rebind must stay at
/// least `required` times faster than the cold recompile it replaces. The
/// ratio comes from BM_WorkloadDialMoveRebindVsCold's rebind_speedup
/// counter, which times both alternatives interleaved within one benchmark
/// — machine speed and scheduler noise cancel out of the ratio, so unlike
/// the baseline comparisons this gate cannot go stale or flake with the
/// runner. Returns 1 (a failure) when the ratio degrades, 0 otherwise;
/// suites without the counter (e.g. older artifacts) pass vacuously.
int CheckRebindSpeedup(const std::map<std::string, BenchResult>& results,
                       double required) {
  const auto it = results.find("BM_WorkloadDialMoveRebindVsCold");
  if (it == results.end() || !(it->second.rebind_speedup > 0)) return 0;
  const double speedup = it->second.rebind_speedup;
  if (speedup < required) {
    std::fprintf(stderr,
                 "check FAILED: model suite: dial-move rebind speedup %.2fx "
                 "below required %.2fx\n",
                 speedup, required);
    return 1;
  }
  std::printf("check: dial-move rebind speedup %.2fx (>= %.2fx required)\n",
              speedup, required);
  return 0;
}

/// One benchmark entry of the machine-readable digest.
Json BenchToJson(const BenchResult& r, const BenchResult* base) {
  Json j = Json::Object();
  j.Set("real_time_ns", r.real_time_ns);
  if (r.msgs_per_s > 0) j.Set("msgs_per_s", r.msgs_per_s);
  if (r.sim_us > 0 || r.model_saturated) {
    j.Set("model_us", r.model_us);
    j.Set("sim_us", r.sim_us);
    j.Set("model_saturated", r.model_saturated);
    if (r.HasErrPct()) j.Set("err_pct", r.ErrPct());
  }
  if (base != nullptr) {
    Json b = Json::Object();
    if (r.msgs_per_s > 0 && base->msgs_per_s > 0) {
      b.Set("msgs_per_s", base->msgs_per_s);
      b.Set("speedup", r.msgs_per_s / base->msgs_per_s);
    } else if (r.HasErrPct() && base->HasErrPct()) {
      b.Set("err_pct", base->ErrPct());
    } else if (base->real_time_ns > 0 && r.real_time_ns > 0) {
      b.Set("real_time_ns", base->real_time_ns);
      b.Set("speedup", base->real_time_ns / r.real_time_ns);
    }
    if (b.Size() > 0) j.Set("baseline", std::move(b));
  }
  return j;
}

}  // namespace

/// One tracked bench suite: the binary to run, the artifact it emits, and
/// the CLI flag naming its baseline. Adding a suite is one table entry.
struct Suite {
  const char* binary;
  const char* artifact;       // file name under --out-dir
  const char* title;
  const char* baseline_flag;  // e.g. "--model-baseline"
  std::string baseline;       // filled from the flag
  std::string out_path;
  std::map<std::string, BenchResult> results;
  std::map<std::string, BenchResult> baseline_results;  // parsed once
};

int main(int argc, char** argv) {
  Suite suites[] = {
      {"bench_perf_sim", "BENCH_sim.json", "simulator suite", "--baseline",
       {}, {}, {}, {}},
      {"bench_perf_model", "BENCH_model.json", "model suite",
       "--model-baseline", {}, {}, {}, {}},
      {"bench_ablation_workload", "BENCH_workload.json",
       "workload validation suite", "--workload-baseline", {}, {}, {}, {}},
      {"bench_ablation_dragonfly", "BENCH_dragonfly.json",
       "dragonfly validation suite", "--dragonfly-baseline", {}, {}, {}, {}},
      {"bench_ablation_burstiness", "BENCH_burstiness.json",
       "burstiness validation suite", "--burstiness-baseline", {}, {}, {}, {}},
      {"bench_perf_server", "BENCH_server.json", "server suite",
       "--server-baseline", {}, {}, {}, {}},
  };

  std::string bench_dir = ".";
  std::string out_dir = ".";
  double min_time = 1.0;
  bool check = false;
  double check_threshold = 1.75;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    Suite* flagged = nullptr;
    for (Suite& s : suites) {
      if (arg == s.baseline_flag) flagged = &s;
    }
    if (flagged != nullptr) {
      flagged->baseline = next();
    } else if (arg == "--bench-dir") {
      bench_dir = next();
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--min-time") {
      min_time = std::strtod(next(), nullptr);
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--check-threshold") {
      check_threshold = std::strtod(next(), nullptr);
      if (check_threshold <= 1.0) {
        std::fprintf(stderr, "error: --check-threshold must be > 1\n");
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: perf_report [--bench-dir DIR] [--out-dir DIR] "
                   "[--baseline FILE] [--model-baseline FILE] "
                   "[--workload-baseline FILE] [--dragonfly-baseline FILE] "
                   "[--server-baseline FILE] [--min-time SECONDS] [--check] "
                   "[--check-threshold FACTOR]\n");
      return arg == "--help" ? 0 : 1;
    }
  }

  for (Suite& s : suites) {
    s.out_path = out_dir + "/" + s.artifact;
    if (RunSuite(bench_dir, s.binary, s.out_path, min_time) != 0) return 1;
    s.results = ParseBenchJson(s.out_path);
    if (s.results.empty()) {
      std::fprintf(stderr,
                   "error: benchmark output missing or unparseable: %s\n",
                   s.out_path.c_str());
      return 1;
    }
  }
  for (Suite& s : suites) {
    if (!s.baseline.empty()) s.baseline_results = ParseBenchJson(s.baseline);
  }
  for (const Suite& s : suites) PrintSuite(s.title, s.out_path, s.results);
  for (const Suite& s : suites) {
    if (!s.baseline.empty()) {
      CompareToBaseline(s.baseline, s.baseline_results, s.results);
    }
  }

  // Machine-readable digest of everything above, through the shared emitter.
  Json summary = Json::Object();
  summary.Set("schema_version", 1);
  Json suites_json = Json::Object();
  for (const Suite& s : suites) {
    const auto& base = s.baseline_results;
    Json suite = Json::Object();
    suite.Set("artifact", s.artifact);
    if (!s.baseline.empty()) suite.Set("baseline", s.baseline);
    Json benches = Json::Object();
    for (const auto& [name, r] : s.results) {
      const auto it = base.find(name);
      benches.Set(name, BenchToJson(r, it == base.end() ? nullptr
                                                        : &it->second));
    }
    suite.Set("benchmarks", std::move(benches));
    suites_json.Set(s.binary, std::move(suite));
  }
  summary.Set("suites", std::move(suites_json));
  const std::string summary_path = out_dir + "/PERF_summary.json";
  std::ofstream out(summary_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", summary_path.c_str());
    return 1;
  }
  out << summary.Dump(2) << "\n";
  std::printf("\nsummary -> %s\n", summary_path.c_str());

  if (check) {
    int regressions = 0;
    bool any_baseline = false;
    for (const Suite& s : suites) {
      if (s.baseline.empty()) continue;
      any_baseline = true;
      regressions += CheckAgainstBaseline(s.title, s.baseline_results,
                                          s.results, check_threshold);
    }
    if (!any_baseline) {
      std::fprintf(stderr, "error: --check needs at least one baseline\n");
      return 1;
    }
    for (const Suite& s : suites) {
      if (std::string(s.binary) == "bench_perf_model") {
        regressions += CheckRebindSpeedup(s.results, 5.0);
      }
    }
    if (regressions > 0) {
      std::fprintf(stderr, "check: %d regression(s) past %.2fx\n", regressions,
                   check_threshold);
      return 2;
    }
    std::printf("check: no regression past %.2fx\n", check_threshold);
  }
  return 0;
}
